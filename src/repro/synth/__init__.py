"""Design-space synthesis: search for the cheapest network that admits
a demand set.

The production inversion of the paper's flow — instead of checking a
hand-picked router configuration against a demand set, search the
configuration space (topology family and size, VCs per link, flit
width, pipeline depth) for the cheapest candidate whose installed
:class:`~repro.alloc.Allocator` admits *every* demand (Even & Fais,
*Algorithms for Network-on-Chip Design with Guaranteed QoS*):

* :mod:`~repro.synth.space` — :class:`CandidateConfig` and the bounded,
  deterministically ordered :class:`DesignSpace`;
* :mod:`~repro.synth.cost` — pluggable cost models over the analysis
  layer (Table 1 area, link pipeline silicon, leakage);
* :mod:`~repro.synth.oracle` — feasibility via a detached
  :class:`~repro.alloc.capacity.ResidualCapacity` of the candidate's
  fabric;
* :mod:`~repro.synth.driver` — the budgeted bisection + refinement
  search, :class:`SynthesisReport` (JSON round-trippable, byte-
  deterministic), and the cost-vs-demand frontier;
* :mod:`~repro.synth.validate` — replay winners through the real
  simulator (``ScenarioRunner``) and check the contract verdicts.

CLI: ``python -m repro synth run|frontier``; see ``docs/synthesis.md``.
"""

from __future__ import annotations

from .cost import (COST_MODELS, AreaCostModel, CostBreakdown, CostModel,
                   cost_model_names, get_cost_model, register_cost_model)
from .driver import (DEFAULT_BUDGET, SCHEMA, SynthesisError,
                     SynthesisReport, frontier_report, prefix_demand_set,
                     run_report, synthesize)
from .oracle import FeasibilityOracle, OracleVerdict
from .space import DEFAULT_FAMILIES, CandidateConfig, DesignSpace
from .validate import replay_point, replay_scenario, validate_report

__all__ = [
    "AreaCostModel",
    "COST_MODELS",
    "CandidateConfig",
    "CostBreakdown",
    "CostModel",
    "DEFAULT_BUDGET",
    "DEFAULT_FAMILIES",
    "DesignSpace",
    "FeasibilityOracle",
    "OracleVerdict",
    "SCHEMA",
    "SynthesisError",
    "SynthesisReport",
    "cost_model_names",
    "frontier_report",
    "get_cost_model",
    "prefix_demand_set",
    "register_cost_model",
    "replay_point",
    "replay_scenario",
    "run_report",
    "synthesize",
    "validate_report",
]
