"""The candidate space of design-space synthesis.

A :class:`CandidateConfig` is one point of the search space the
synthesis driver explores: a topology family and tile-array size (via
the :mod:`repro.network.topology` registry) plus the
:class:`~repro.core.config.RouterConfig` knobs that dominate cost —
VCs per link, flit width and link pipeline depth.  A
:class:`DesignSpace` bounds which of those points the driver may visit
(which families, which VC counts, which widths, how far beyond the
demand set's own tile array the fabric may grow) and fixes their
deterministic enumeration order, so identical inputs always walk
identical candidates.

Pipeline depth is a *derived* knob: every candidate carries the minimum
``link_stages`` that keeps its longest link from throttling the router
port (:func:`repro.circuits.pipeline.stages_for_full_speed`) — fewer
stages is timing-infeasible, more is pure cost.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterator, Optional, Tuple

from ..circuits.pipeline import stages_for_full_speed
from ..core.config import RouterConfig
from ..network.topology import Topology, build_topology, topology_names

__all__ = ["CandidateConfig", "DesignSpace", "DEFAULT_FAMILIES"]

#: Families the default space searches: the paper's mesh plus the two
#: ring fabrics whose sparser link graphs make them the cheap
#: alternative whenever the demand set fits their arcs.
DEFAULT_FAMILIES: Tuple[str, ...] = ("mesh", "ring", "ring-uni")


@dataclass(frozen=True, order=True)
class CandidateConfig:
    """One point of the search space: a fabric plus router knobs.

    The dataclass ordering (family, size, VCs, width, stages) is the
    tie-break every driver decision falls back to — two candidates with
    equal cost resolve to the lexicographically smaller one, never to
    iteration luck.
    """

    topology: str
    cols: int
    rows: int
    vcs_per_port: int
    flit_width: int = 32
    link_stages: int = 1

    @property
    def label(self) -> str:
        return (f"{self.topology}-{self.cols}x{self.rows}"
                f"-v{self.vcs_per_port}-w{self.flit_width}"
                f"-s{self.link_stages}")

    def router_config(self) -> RouterConfig:
        """The RouterConfig this candidate's network would be built
        with (raises ``ValueError`` for out-of-range knobs — the same
        validation the real hardware parameters enforce)."""
        return RouterConfig(vcs_per_port=self.vcs_per_port,
                            flit_width=self.flit_width,
                            link_stages=self.link_stages)

    def build(self, config: Optional[RouterConfig] = None) -> Topology:
        """Instantiate the candidate's fabric."""
        config = config or self.router_config()
        return build_topology(self.topology, self.cols, self.rows,
                              link_length_mm=config.link_length_mm,
                              link_stages=config.link_stages)

    def required_stages(self, config: Optional[RouterConfig] = None) -> int:
        """Minimum pipeline depth so the candidate's *longest* link
        runs at full port speed (the timing-feasibility floor).  Raises
        ``ValueError`` when no depth up to 64 suffices."""
        config = config or self.router_config()
        topology = self.build(config)
        longest = max(link.length_mm for link in topology.graph_links())
        return stages_for_full_speed(config.timing, longest)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "topology": self.topology,
            "cols": self.cols,
            "rows": self.rows,
            "vcs_per_port": self.vcs_per_port,
            "flit_width": self.flit_width,
            "link_stages": self.link_stages,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CandidateConfig":
        return cls(topology=data["topology"], cols=int(data["cols"]),
                   rows=int(data["rows"]),
                   vcs_per_port=int(data["vcs_per_port"]),
                   flit_width=int(data["flit_width"]),
                   link_stages=int(data["link_stages"]))


@dataclass(frozen=True)
class DesignSpace:
    """Bounds + deterministic enumeration order of the search.

    ``size_span`` allows the fabric to grow up to that many tiles
    beyond the demand set's own array in each dimension (extra routing
    room for congested sets); VC counts and widths are searched over
    the listed values.  All sequences are kept sorted so the space, its
    JSON form and the candidate enumeration are canonical.
    """

    families: Tuple[str, ...] = DEFAULT_FAMILIES
    vcs: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    widths: Tuple[int, ...] = (16, 32)
    size_span: int = 4

    def __post_init__(self):
        if not self.families:
            raise ValueError("a design space searches at least one family")
        known = set(topology_names())
        unknown = [name for name in self.families if name not in known]
        if unknown:
            raise ValueError(
                f"unknown topology families {unknown} "
                f"(known: {', '.join(sorted(known))})")
        if len(set(self.families)) != len(self.families):
            raise ValueError("duplicate topology families")
        if not self.vcs or not self.widths:
            raise ValueError("the VC and width axes must be non-empty")
        object.__setattr__(self, "vcs",
                           tuple(sorted(set(int(v) for v in self.vcs))))
        object.__setattr__(self, "widths",
                           tuple(sorted(set(int(w) for w in self.widths))))
        if self.vcs[0] < 1 or self.vcs[-1] > 8:
            raise ValueError("VCs per port searchable over 1..8 only")
        if self.widths[0] < 8:
            raise ValueError("flit widths below 8 bits are not meaningful")
        if self.size_span < 0:
            raise ValueError("size span must be non-negative")

    @property
    def max_vcs(self) -> int:
        return self.vcs[-1]

    @property
    def max_width(self) -> int:
        return self.widths[-1]

    def sizes(self, cols: int, rows: int) -> Tuple[Tuple[int, int], ...]:
        """The tile arrays searched for a ``cols x rows`` demand set:
        the set's own array plus ``size_span`` uniform growth steps."""
        return tuple((cols + k, rows + k)
                     for k in range(self.size_span + 1))

    def candidates(self, cols: int, rows: int
                   ) -> Iterator[CandidateConfig]:
        """Every point of the space for a ``cols x rows`` demand set,
        in the canonical (family, size, VCs, width) order.  Pipeline
        depth is derived per (family, size), not enumerated.  This is
        the reference ordering the driver's bisection provably stays
        inside; exhaustive walks (tests, tiny spaces) use it directly.
        """
        for family in self.families:
            for c, r in self.sizes(cols, rows):
                probe = CandidateConfig(family, c, r, self.vcs[0],
                                        self.widths[0])
                try:
                    stages = probe.required_stages()
                except ValueError:
                    continue  # no pipeline depth reaches full speed
                for vcs in self.vcs:
                    for width in self.widths:
                        yield replace(probe, vcs_per_port=vcs,
                                      flit_width=width,
                                      link_stages=stages)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "families": list(self.families),
            "vcs": list(self.vcs),
            "widths": list(self.widths),
            "size_span": self.size_span,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DesignSpace":
        return cls(families=tuple(data["families"]),
                   vcs=tuple(data["vcs"]),
                   widths=tuple(data["widths"]),
                   size_span=int(data["size_span"]))
