"""The feasibility oracle: does a candidate admit the whole demand set?

Feasibility composes three checks, cheapest first:

1. **Coverage** — every demand endpoint must be a tile of the
   candidate's array (fabrics share the Coord grid node set, so this
   is pure geometry).
2. **Timing** — the candidate's pipeline depth must keep its longest
   link at full port speed (:meth:`CandidateConfig.required_stages`);
   a link that throttles the port breaks every contract crossing it.
3. **Capacity** — the installed :class:`~repro.alloc.Allocator`
   (default ``ripup``) must admit *every* demand against a detached
   :class:`~repro.alloc.capacity.ResidualCapacity` of the candidate's
   fabric.  This is the Even & Fais inner loop: design-time QoS
   allocation as the admission test of design-space search.

A feasible verdict carries the allocator's hop plan as JSON-safe port
names — the exact routes :mod:`repro.synth.validate` later replays
through the real simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..alloc import get_allocator
from ..alloc.capacity import ResidualCapacity
from ..alloc.demand import DemandSet
from .space import CandidateConfig

__all__ = ["OracleVerdict", "FeasibilityOracle"]


@dataclass(frozen=True)
class OracleVerdict:
    """One feasibility decision, with the evidence."""

    feasible: bool
    admitted: int
    total: int
    #: Why the candidate was rejected ("" when feasible).
    reason: str = ""
    #: Per-demand routes as port-name sequences, in demand order
    #: (``None`` entries for rejected demands) — JSON-safe, resolvable
    #: against a freshly built topology of the same candidate.
    plan: Tuple[Optional[Dict[str, Any]], ...] = field(default=())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "feasible": self.feasible,
            "admitted": self.admitted,
            "total": self.total,
            "reason": self.reason,
            "plan": [dict(route) if route is not None else None
                     for route in self.plan],
        }


class FeasibilityOracle:
    """Decides candidates for one allocator (shared across a search)."""

    def __init__(self, allocator="ripup"):
        self.allocator = get_allocator(allocator)

    @property
    def name(self) -> str:
        return self.allocator.name

    def check(self, candidate: CandidateConfig,
              demand_set: DemandSet) -> OracleVerdict:
        """Full feasibility verdict for one candidate."""
        total = len(demand_set)
        if (candidate.cols < demand_set.cols
                or candidate.rows < demand_set.rows):
            return OracleVerdict(
                feasible=False, admitted=0, total=total,
                reason=(f"{candidate.cols}x{candidate.rows} tile array "
                        f"cannot cover the {demand_set.cols}x"
                        f"{demand_set.rows} demand endpoints"))
        try:
            config = candidate.router_config()
        except ValueError as error:
            return OracleVerdict(feasible=False, admitted=0, total=total,
                                 reason=f"invalid configuration: {error}")
        try:
            required = candidate.required_stages(config)
        except ValueError as error:
            return OracleVerdict(
                feasible=False, admitted=0, total=total,
                reason=f"no full-speed pipeline depth: {error}")
        if candidate.link_stages < required:
            return OracleVerdict(
                feasible=False, admitted=0, total=total,
                reason=(f"{candidate.link_stages} pipeline stage(s) "
                        f"throttle the longest link below port speed "
                        f"({required} required)"))
        topology = candidate.build(config)
        capacity = ResidualCapacity.fresh(candidate.cols, candidate.rows,
                                          config, topology=topology)
        pairs = demand_set.pairs()
        results = self.allocator.allocate_batch(capacity, pairs)
        admitted = sum(1 for result in results if result is not None)
        plan = tuple(self._route(pair, result)
                     for pair, result in zip(pairs, results))
        if admitted == total:
            return OracleVerdict(feasible=True, admitted=admitted,
                                 total=total, plan=plan)
        return OracleVerdict(
            feasible=False, admitted=admitted, total=total, plan=plan,
            reason=(f"{self.allocator.name} admits {admitted}/{total} "
                    f"demands"))

    @staticmethod
    def _route(pair, allocation) -> Optional[Dict[str, Any]]:
        if allocation is None:
            return None
        src, dst = pair
        _src_iface, _dst_iface, hops = allocation
        return {
            "src": [src.x, src.y],
            "dst": [dst.x, dst.y],
            "ports": [hop.out_dir.name for hop in hops],
        }
