"""Cost models scoring synthesis candidates.

A :class:`CostModel` turns a :class:`~repro.synth.space.CandidateConfig`
into a :class:`CostBreakdown` — JSON-safe plain data whose
``total_mm2`` is the scalar the search minimises.  The default
``area`` model composes the existing analysis layer:

* per-router silicon from :class:`~repro.analysis.area.AreaModel`
  (Table 1 calibrated), scaled by each node's populated port count —
  a mesh-edge or ring node does not pay for switch halves, arbiters
  and VC buffers on ports it does not wire;
* link pipeline silicon from the :class:`~repro.analysis.area.CellLibrary`
  latch/driver cells, per stage per wire — the term that charges a
  ring's long wrap links for the deep pipelines their timing needs
  (:func:`repro.circuits.pipeline.stages_for_full_speed`);
* idle (leakage) power from :class:`~repro.analysis.power.EnergyModel`
  rides along informationally — it is proportional to area in this
  process generation, so it never reorders candidates, but reports
  show the watts a design would idle at.

Models are registered by name (``--cost-model``), mirroring the
allocator and topology registries.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Dict, List

from ..analysis.area import AreaModel, CellLibrary
from ..analysis.power import EnergyModel
from .space import CandidateConfig

__all__ = ["CostBreakdown", "CostModel", "AreaCostModel", "COST_MODELS",
           "get_cost_model", "cost_model_names", "register_cost_model"]

#: The full MANGO router of Table 1 is a 5x5: four network ports plus
#: the local port.  Degree scaling prices a node at the populated
#: fraction of those ports.
_FULL_ROUTER_PORTS = 5


@dataclass(frozen=True)
class CostBreakdown:
    """What one candidate costs, split by where the silicon goes."""

    router_mm2: float
    link_mm2: float
    leakage_mw: float

    @property
    def total_mm2(self) -> float:
        return self.router_mm2 + self.link_mm2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "router_mm2": round(self.router_mm2, 6),
            "link_mm2": round(self.link_mm2, 6),
            "total_mm2": round(self.total_mm2, 6),
            "leakage_mw": round(self.leakage_mw, 6),
        }


class CostModel(ABC):
    """One way of pricing a candidate configuration."""

    #: Registry key (``--cost-model`` value).
    name: str = ""

    #: One-line summary for CLI tables.
    description: str = ""

    @abstractmethod
    def evaluate(self, candidate: CandidateConfig) -> CostBreakdown:
        """Price a candidate (deterministic, side-effect free)."""


class AreaCostModel(CostModel):
    """Pre-layout standard-cell area, the paper's Table 1 currency."""

    name = "area"
    description = ("degree-scaled Table 1 router area + per-stage link "
                   "pipeline latches; leakage power informational")

    def __init__(self, library: CellLibrary = CellLibrary(),
                 energy: EnergyModel = EnergyModel()):
        self.library = library
        self.energy = energy

    def evaluate(self, candidate: CandidateConfig) -> CostBreakdown:
        config = candidate.router_config()
        topology = candidate.build(config)
        full_router = AreaModel(config).report().total
        out_degree: Dict[object, int] = {node: 0
                                         for node in topology.tiles()}
        stage_total = 0
        for link in topology.graph_links():
            out_degree[link.src] += 1
            stage_total += link.stages
        router_mm2 = sum(
            full_router * (degree + 1) / _FULL_ROUTER_PORTS
            for degree in out_degree.values())
        # One pipeline stage latches every wire of the link (flit body
        # + tail + BE-VC + 5 steering bits) and re-drives it.
        link_wires = config.flit_width + 2 + 5
        per_stage_um2 = link_wires * (self.library.latch
                                      + 2 * self.library.buf)
        link_mm2 = stage_total * per_stage_um2 / 1e6
        total = router_mm2 + link_mm2
        return CostBreakdown(
            router_mm2=router_mm2, link_mm2=link_mm2,
            leakage_mw=self.energy.leakage_mw_per_mm2 * total)


#: Registered cost models, keyed by ``--cost-model`` value.
COST_MODELS: Dict[str, CostModel] = {}


def register_cost_model(model: CostModel) -> None:
    if not model.name:
        raise ValueError("a cost model needs a name")
    if model.name in COST_MODELS:
        raise ValueError(f"cost model {model.name!r} already registered")
    COST_MODELS[model.name] = model


def get_cost_model(model) -> CostModel:
    """Resolve a ``--cost-model`` value (name or instance)."""
    if isinstance(model, CostModel):
        return model
    try:
        return COST_MODELS[model]
    except KeyError:
        known = ", ".join(cost_model_names())
        raise KeyError(
            f"unknown cost model {model!r} (known: {known})") from None


def cost_model_names() -> List[str]:
    """Registered model names, default (``area``) first."""
    return sorted(COST_MODELS, key=lambda name: (name != "area", name))


register_cost_model(AreaCostModel())
