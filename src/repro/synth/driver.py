"""The deterministic synthesis search driver.

Given a :class:`~repro.alloc.demand.DemandSet`, find the cheapest
:class:`~repro.synth.space.CandidateConfig` the feasibility oracle
admits, under a fixed evaluation budget:

* **per family, monotone bisection on size** — at maximal knobs
  (most VCs, widest flits, full-speed pipeline depth), feasibility is
  monotone in the tile array (more links never hurt admission), so the
  smallest feasible size is found in O(log span) oracle calls;
* **bounded local refinement at that size** — bisect the VC axis down
  to the smallest feasible count (capacity is per-VC pools, so
  feasibility is monotone in V), then walk the width axis upward and
  keep the first feasible width (width never affects admission, only
  cost);
* **the cheapest feasible candidate across families wins**, ties
  broken by the candidate ordering itself — never by iteration luck.

Every oracle call is cached and counted; the budget caps *fresh*
evaluations, and an exhausted budget returns the best candidate found
so far (flagged in the report) instead of failing.  The whole search is
deterministic: identical demand set + space + allocator + budget
produce a byte-identical :class:`SynthesisReport` JSON, in-process or
across process spawns.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..alloc.demand import DemandSet
from .cost import CostBreakdown, get_cost_model
from .oracle import FeasibilityOracle, OracleVerdict
from .space import CandidateConfig, DesignSpace

__all__ = ["SynthesisError", "SynthesisReport", "SCHEMA",
           "DEFAULT_BUDGET", "synthesize", "run_report",
           "frontier_report", "prefix_demand_set"]

SCHEMA = "repro-synth/1"

#: Fresh oracle evaluations one ``synthesize`` call may spend.
DEFAULT_BUDGET = 64


class SynthesisError(ValueError):
    """A synthesis request is inconsistent or cannot be served."""


class _BudgetExhausted(Exception):
    """Internal: the evaluator refused a fresh oracle call."""


class _Evaluator:
    """Cached, budgeted oracle + cost evaluation."""

    def __init__(self, oracle: FeasibilityOracle, cost_model,
                 demand_set: DemandSet, budget: int):
        self.oracle = oracle
        self.cost_model = cost_model
        self.demand_set = demand_set
        self.budget = budget
        self.spent = 0
        self.cache: Dict[CandidateConfig,
                         Tuple[OracleVerdict, CostBreakdown]] = {}

    def evaluate(self, candidate: CandidateConfig
                 ) -> Tuple[OracleVerdict, CostBreakdown]:
        if candidate in self.cache:
            return self.cache[candidate]
        if self.spent >= self.budget:
            raise _BudgetExhausted()
        self.spent += 1
        verdict = self.oracle.check(candidate, self.demand_set)
        cost = self.cost_model.evaluate(candidate)
        self.cache[candidate] = (verdict, cost)
        return verdict, cost


class _Best:
    """Cheapest feasible candidate seen so far, deterministic ties."""

    def __init__(self):
        self.candidate: Optional[CandidateConfig] = None
        self.cost: Optional[CostBreakdown] = None
        self.verdict: Optional[OracleVerdict] = None

    def consider(self, candidate: CandidateConfig,
                 verdict: OracleVerdict, cost: CostBreakdown) -> None:
        if not verdict.feasible:
            return
        if (self.candidate is None
                or (cost.total_mm2, candidate)
                < (self.cost.total_mm2, self.candidate)):
            self.candidate, self.cost, self.verdict = (candidate, cost,
                                                       verdict)


def _family_candidate(family: str, size: Tuple[int, int], vcs: int,
                      width: int) -> Optional[CandidateConfig]:
    """The candidate at a space point, with its derived pipeline depth
    (None when no depth keeps the longest link at full speed)."""
    cols, rows = size
    probe = CandidateConfig(family, cols, rows, vcs, width)
    try:
        stages = probe.required_stages()
    except ValueError:
        return None
    return replace(probe, link_stages=stages)


def _search_family(family: str, space: DesignSpace, evaluator: _Evaluator,
                   best: _Best) -> Dict[str, Any]:
    """Bisection on size + local refinement for one topology family."""
    dset = evaluator.demand_set
    sizes = space.sizes(dset.cols, dset.rows)
    spent_before = evaluator.spent
    family_best = _Best()
    last_reason = ""

    def probe(size_ix: int, vcs: int, width: int) -> Optional[
            Tuple[CandidateConfig, OracleVerdict, CostBreakdown]]:
        nonlocal last_reason
        candidate = _family_candidate(family, sizes[size_ix], vcs, width)
        if candidate is None:
            last_reason = (f"no pipeline depth keeps the "
                           f"{sizes[size_ix][0]}x{sizes[size_ix][1]} "
                           f"{family} links at full speed")
            return None
        verdict, cost = evaluator.evaluate(candidate)
        best.consider(candidate, verdict, cost)
        family_best.consider(candidate, verdict, cost)
        if not verdict.feasible:
            last_reason = verdict.reason
        return candidate, verdict, cost

    def feasible_at(size_ix: int) -> bool:
        outcome = probe(size_ix, space.max_vcs, space.max_width)
        return outcome is not None and outcome[1].feasible

    def report() -> Dict[str, Any]:
        entry = {
            "family": family,
            "feasible": family_best.candidate is not None,
            "candidate": (family_best.candidate.to_dict()
                          if family_best.candidate else None),
            "cost": (family_best.cost.to_dict()
                     if family_best.cost else None),
            "evaluations": evaluator.spent - spent_before,
        }
        if family_best.candidate is None:
            entry["reason"] = last_reason
        return entry

    # Monotone bisection: smallest size feasible at maximal knobs.
    if feasible_at(0):
        star = 0
    elif len(sizes) > 1 and feasible_at(len(sizes) - 1):
        lo, hi = 0, len(sizes) - 1   # lo infeasible, hi feasible
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if feasible_at(mid):
                hi = mid
            else:
                lo = mid
        star = hi
    else:
        return report()

    # VC refinement: smallest feasible count at the winning size.
    vcs_axis = space.vcs
    star_vcs = space.max_vcs
    if len(vcs_axis) > 1:
        lo, hi = -1, len(vcs_axis) - 1   # hi known feasible
        while hi - lo > 1:
            mid = (lo + hi) // 2
            outcome = probe(star, vcs_axis[mid], space.max_width)
            if outcome is not None and outcome[1].feasible:
                hi = mid
            else:
                lo = mid
        star_vcs = vcs_axis[hi]

    # Width refinement: cost grows with width, so the first feasible
    # width walking upward wins (admission never depends on width).
    for width in space.widths:
        outcome = probe(star, star_vcs, width)
        if outcome is not None and outcome[1].feasible:
            break

    return report()


def synthesize(demand_set: DemandSet, allocator="ripup",
               space: Optional[DesignSpace] = None, cost_model="area",
               budget: int = DEFAULT_BUDGET,
               seeds: Sequence[CandidateConfig] = ()) -> Dict[str, Any]:
    """Search the space for the cheapest feasible candidate.

    Returns one frontier *point* as JSON-safe plain data.  ``seeds``
    are known-good candidates (e.g. a superset demand set's winner)
    evaluated first — they bound the answer from above, which is what
    makes the frontier cost monotone by construction.
    """
    if budget < 1:
        raise SynthesisError("the evaluation budget must be >= 1")
    demand_set.validate()
    space = space or DesignSpace()
    oracle = FeasibilityOracle(allocator)
    evaluator = _Evaluator(oracle, get_cost_model(cost_model),
                           demand_set, budget)
    best = _Best()
    families: List[Dict[str, Any]] = []
    exhausted = False
    try:
        for seed in seeds:
            verdict, cost = evaluator.evaluate(seed)
            best.consider(seed, verdict, cost)
        for family in space.families:
            families.append(_search_family(family, space, evaluator,
                                           best))
    except _BudgetExhausted:
        exhausted = True
    point = {
        "demand_set": demand_set.name,
        "n_demands": len(demand_set),
        "feasible": best.candidate is not None,
        "evaluations": evaluator.spent,
        "budget_exhausted": exhausted,
        "families": families,
        "best": None,
    }
    if best.candidate is not None:
        point["best"] = {
            "candidate": best.candidate.to_dict(),
            "cost": best.cost.to_dict(),
            "plan": [dict(route) for route in best.verdict.plan],
        }
    return point


@dataclass
class SynthesisReport:
    """The JSON-round-trippable output of ``synth run|frontier``."""

    demand_set: Dict[str, Any]
    allocator: str
    cost_model: str
    budget: int
    space: Dict[str, Any]
    points: List[Dict[str, Any]]

    def best_point(self) -> Dict[str, Any]:
        """The full-set point (largest prefix)."""
        return self.points[-1]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "demand_set": self.demand_set,
            "allocator": self.allocator,
            "cost_model": self.cost_model,
            "budget": self.budget,
            "space": self.space,
            "points": self.points,
        }

    def to_json(self) -> str:
        """Canonical form: sorted keys, no timestamps, no floats that
        depend on wall time — byte-identical for identical inputs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SynthesisReport":
        if data.get("schema") != SCHEMA:
            raise SynthesisError(
                f"not a synthesis report (schema "
                f"{data.get('schema')!r}, expected {SCHEMA!r})")
        return cls(demand_set=data["demand_set"],
                   allocator=data["allocator"],
                   cost_model=data["cost_model"],
                   budget=int(data["budget"]), space=data["space"],
                   points=list(data["points"]))

    @classmethod
    def from_json(cls, text: str) -> "SynthesisReport":
        return cls.from_dict(json.loads(text))


def _report(demand_set: DemandSet, allocator, space: DesignSpace,
            cost_model, budget: int,
            points: List[Dict[str, Any]]) -> SynthesisReport:
    oracle = FeasibilityOracle(allocator)
    return SynthesisReport(
        demand_set=demand_set.to_dict(), allocator=oracle.name,
        cost_model=get_cost_model(cost_model).name, budget=budget,
        space=space.to_dict(), points=points)


def run_report(demand_set: DemandSet, allocator="ripup",
               space: Optional[DesignSpace] = None, cost_model="area",
               budget: int = DEFAULT_BUDGET) -> SynthesisReport:
    """``synth run``: one point, the whole demand set."""
    space = space or DesignSpace()
    point = synthesize(demand_set, allocator, space, cost_model, budget)
    return _report(demand_set, allocator, space, cost_model, budget,
                   [point])


def prefix_demand_set(demand_set: DemandSet, count: int) -> DemandSet:
    """The first ``count`` demands as their own (validated) set."""
    if not 1 <= count <= len(demand_set):
        raise SynthesisError(
            f"prefix of {count} demands out of range 1.."
            f"{len(demand_set)}")
    if count == len(demand_set):
        return demand_set
    sub = DemandSet(name=f"{demand_set.name}:first-{count}",
                    cols=demand_set.cols, rows=demand_set.rows,
                    demands=demand_set.demands[:count],
                    description=(f"first {count} demands of "
                                 f"{demand_set.name}"),
                    vcs_per_port=demand_set.vcs_per_port)
    sub.validate()
    return sub


def frontier_report(demand_set: DemandSet, allocator="ripup",
                    space: Optional[DesignSpace] = None,
                    cost_model="area", budget: int = DEFAULT_BUDGET,
                    points: int = 4) -> SynthesisReport:
    """``synth frontier``: cost vs demand-set size.

    Synthesizes growing prefixes of the demand set (each with its own
    ``budget``), largest first: a larger prefix's winner seeds every
    smaller prefix's search, so the reported cost curve is monotone
    non-increasing as the demand set shrinks — by construction, not by
    heuristic luck.
    """
    if points < 1:
        raise SynthesisError("the frontier needs at least one point")
    total = len(demand_set)
    counts = sorted({max(1, (total * i) // points)
                     for i in range(1, points + 1)} | {total})
    by_count: Dict[int, Dict[str, Any]] = {}
    space = space or DesignSpace()
    seeds: Tuple[CandidateConfig, ...] = ()
    for count in reversed(counts):
        sub = prefix_demand_set(demand_set, count)
        point = synthesize(sub, allocator, space, cost_model, budget,
                           seeds=seeds)
        if point["feasible"]:
            seeds = (CandidateConfig.from_dict(
                point["best"]["candidate"]),)
        by_count[count] = point
    return _report(demand_set, allocator, space, cost_model, budget,
                   [by_count[count] for count in counts])
