"""repro — reproduction of the MANGO clockless network-on-chip router.

Bjerregaard & Sparsø, "A Router Architecture for Connection-Oriented
Service Guarantees in the MANGO Clockless Network-on-Chip", DATE 2005.

Quickstart::

    from repro import MangoNetwork, Coord

    net = MangoNetwork(2, 2)
    conn = net.open_connection(Coord(0, 0), Coord(1, 1))
    for value in range(16):
        conn.send(value)
    net.run(until=net.now + 2000)
    print(conn.sink.count, "flits delivered,",
          f"mean latency {conn.sink.mean_latency:.1f} ns")
"""

from .alloc import (ALLOCATORS, Allocator, allocator_names, get_allocator,
                    register_allocator)
from .backends import (BACKENDS, BackendCapabilityError, RouterBackend,
                       backend_names, get_backend, register_backend)
from .circuits.timing import TYPICAL, TimingProfile, WORST_CASE
from .core.config import RouterConfig
from .core.router import MangoRouter
from .network.adapter import ClockDomain, NetworkAdapter
from .network.connection import AdmissionError, Connection, GsSink
from .network.network import MangoNetwork
from .network.topology import Coord, Direction, Mesh
from .sim.kernel import Simulator
from .sim.tracing import Tracer

__version__ = "1.0.0"

__all__ = [
    "ALLOCATORS",
    "AdmissionError",
    "Allocator",
    "BACKENDS",
    "BackendCapabilityError",
    "ClockDomain",
    "Connection",
    "Coord",
    "Direction",
    "GsSink",
    "MangoNetwork",
    "MangoRouter",
    "Mesh",
    "NetworkAdapter",
    "RouterBackend",
    "RouterConfig",
    "Simulator",
    "TYPICAL",
    "TimingProfile",
    "Tracer",
    "WORST_CASE",
    "__version__",
    "allocator_names",
    "backend_names",
    "get_allocator",
    "get_backend",
    "register_allocator",
    "register_backend",
]
