"""Turn a :class:`~repro.scenarios.spec.ScenarioSpec` into a run.

The :class:`ScenarioRunner` is the *only* place in the repository that
constructs a network + workload + collectors from a description: the
integration tests, the benchmarks and the CLI all go through it, so a
new workload is a new spec, never a new driver.

The network itself is built through a pluggable
:class:`~repro.backends.base.RouterBackend` (``backend="mango"`` by
default): the same spec, sources, collectors, verdicts and fingerprint
machinery replay on the MANGO router, the generic arbitrated-VC router
of paper Figure 3, an ÆTHEREAL-style TDM network, or the prioritized-VC
router of ref [9] — the paper's comparative claims as an automated
matrix axis (see ``docs/backends.md``).

Construction order is part of the contract — connections are opened in
spec order, GS traffic attached per connection, then the BE workload is
built (collectors for every tile, then one source per tile with seed
``seed*1000 + tile_index``) — because the flit-hop fingerprints of the
registry scenarios are asserted in-repo and any reordering would shift
RNG draws and event sequence.  The ``mango`` backend performs exactly
the construction calls this module made before backends existed, so the
golden fingerprints are byte-for-byte stable.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from ..backends import (BackendCapabilityError, RouterBackend,
                        backend_for_topology, get_backend)
from ..core.config import RouterConfig
from ..network.connection import AdmissionError
from ..network.network import MangoNetwork
from ..network.topology import Coord, Direction, Mesh
from ..obs import MetricsRegistry, ObsConfig, build_registry
from ..traffic.generators import BurstySource, CbrSource
from ..traffic.patterns import (BitComplement, Hotspot, LocalUniform,
                                NearestNeighbor, Pattern, Transpose,
                                UniformRandom)
from ..traffic.stats import P2Quantile, RunningStats, percentile
from ..traffic.workload import UniformBeWorkload
from .spec import BeTrafficSpec, ChurnSpec, FailureSpec, ScenarioSpec

__all__ = [
    "ChurnDriver",
    "ConnectionVerdict",
    "ScenarioResult",
    "ScenarioRunner",
    "build_pattern",
    "flit_hop_fingerprint",
]

#: Injection slack allowed on top of the contract's worst-case network
#: latency (the local interface adds a few cycles outside the contract;
#: same allowance as tests/integration/test_qos_contracts.py).
LATENCY_SLACK_CYCLES = 3

#: Result-level BE latency quantiles.
RESULT_QUANTILES = (50.0, 99.0)


def build_pattern(be: BeTrafficSpec, mesh: Mesh) -> Pattern:
    """Instantiate the spatial pattern a BE spec names."""
    seed = be.pattern_seed
    if be.pattern == "uniform":
        return UniformRandom(mesh, seed=seed)
    if be.pattern == "local_uniform":
        return LocalUniform(mesh, radius=be.radius, seed=seed)
    if be.pattern == "transpose":
        return Transpose(mesh, seed=seed)
    if be.pattern == "bit_complement":
        return BitComplement(mesh, seed=seed)
    if be.pattern == "nearest_neighbor":
        return NearestNeighbor(mesh, seed=seed)
    if be.pattern == "hotspot":
        hotspot = (Coord(*be.hotspot) if be.hotspot is not None
                   else Coord(mesh.cols // 2, mesh.rows // 2))
        return Hotspot(mesh, hotspot, fraction=be.fraction, seed=seed)
    raise ValueError(f"unknown pattern {be.pattern!r}")


def flit_hop_fingerprint(network: MangoNetwork) -> str:
    """A machine-independent digest of where every flit went.

    Hashes the per-link GS/BE traversal counts (router-router links and
    the local injection links) plus each open connection's delivered
    count and payload sum.  Pure integer state, so the digest is
    identical across hosts, Python versions and kernel drive styles —
    any change means the *simulated work* changed, which is exactly what
    the determinism regression tests want to catch.
    """
    parts: List[str] = []
    for (coord, direction), link in sorted(
            network.links.items(),
            key=lambda item: (item[0][0].x, item[0][0].y, item[0][1].name)):
        parts.append(f"L{coord.x},{coord.y},{direction.name}:"
                     f"{link.gs_flits},{link.be_flits}")
    for coord in sorted(network.adapters,
                        key=lambda c: (c.x, c.y)):
        local = network.adapters[coord].local_link
        parts.append(f"I{coord.x},{coord.y}:{local.gs_flits}")
    for cid in sorted(network.connection_manager.connections):
        sink = network.connection_manager.connections[cid].sink
        parts.append(f"C{cid}:{sink.count},{sum(sink.payloads)}")
    digest = hashlib.sha256("|".join(parts).encode("ascii")).hexdigest()
    return digest[:16]


class ChurnDriver:
    """Opens and closes GS connections at runtime, through the real
    programming protocol (:class:`~repro.scenarios.spec.ChurnSpec`).

    Runs as one deterministic kernel process: per cycle it requests
    every pair through ``ConnectionManager.open`` (admission rejections
    are counted, not fatal), streams ``flits_per_open`` flits over each
    admitted connection, polls the sinks until everything is delivered,
    settles, and closes each connection again — so the VC/interface
    pools breathe every cycle, which no build-time connection set
    exercises.
    """

    def __init__(self, net, churn: ChurnSpec):
        self.net = net
        self.churn = churn
        self.opened = 0
        self.rejected = 0
        self.closed = 0
        self.flits_sent = 0
        self.delivered = 0
        self.process = net.sim.process(self._run(), name="churn")

    def _run(self):
        sim = self.net.sim
        manager = self.net.connection_manager
        churn = self.churn
        payload = 0
        for _cycle in range(churn.cycles):
            conns = []
            for src, dst in churn.pairs:
                try:
                    conn = yield from manager.open(
                        Coord(*src), Coord(*dst), want_ack=churn.want_ack)
                except AdmissionError:
                    self.rejected += 1
                    continue
                self.opened += 1
                conns.append(conn)
            if not churn.want_ack:
                # Fire-and-forget setup: "open" returned before the
                # table writes landed; let the config packets program
                # the path before data chases them.
                yield sim.timeout(churn.settle_ns)
            for conn in conns:
                for index in range(churn.flits_per_open):
                    conn.send(payload,
                              last=index == churn.flits_per_open - 1)
                    payload += 1
                    self.flits_sent += 1
            # Poll the sinks up to the per-cycle delivery deadline: a
            # shortfall is *recorded* (failing the churn verdict via
            # delivered < flits_sent) rather than polled forever into
            # the runner's opaque max_ns timeout.
            deadline = sim.now + churn.deliver_timeout_ns
            for conn in conns:
                while conn.sink.count < churn.flits_per_open \
                        and sim.now < deadline:
                    yield sim.timeout(churn.poll_ns)
            # Let trailing unlock/credit signals settle before tearing
            # the tables down.
            yield sim.timeout(churn.settle_ns)
            for conn in conns:
                self.delivered += conn.sink.count
                if conn.sink.count < churn.flits_per_open:
                    # Undelivered flits may still sit in VC buffers;
                    # leave the connection open (closed < opened also
                    # fails the verdict) instead of tearing tables out
                    # from under in-flight traffic.
                    continue
                yield from manager.close(conn, want_ack=churn.want_ack)
                self.closed += 1

    def stats(self) -> Dict[str, int]:
        return {
            "opened": self.opened,
            "rejected": self.rejected,
            "closed": self.closed,
            "flits_sent": self.flits_sent,
            "delivered": self.delivered,
        }


@dataclass
class ConnectionVerdict:
    """Per-GS-connection QoS conformance against its contract."""

    label: str
    hops: int
    traffic: str
    offered: int
    delivered: int
    complete: bool
    in_order: bool
    latency_checked: bool
    observed_max_latency_ns: float
    latency_bound_ns: float
    latency_ok: Optional[bool]

    @property
    def ok(self) -> bool:
        return self.complete and self.in_order and self.latency_ok is not False

    def to_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__, ok=self.ok)


@dataclass
class ScenarioResult:
    """Everything a run measured, plus its determinism fingerprint."""

    name: str
    cols: int
    rows: int
    backend: str
    allocator: str
    topology: str
    mode: str
    retain_packets: bool
    sim_ns: float
    wall_s: float
    events: int
    flit_hops: int
    fingerprint: str
    be_sent: int
    be_received: int
    offered_load: float           # BE packets injected per ns
    accepted_load: float          # BE packets delivered per ns
    latency_mean_ns: float
    latency_p50_ns: float
    latency_p99_ns: float
    gs: List[ConnectionVerdict] = field(default_factory=list)
    failure_expected: bool = False
    failure_detected: bool = False
    failure_kind: str = ""
    churn: Optional[Dict[str, int]] = None
    #: JSON-safe ``MetricsSnapshot.to_dict()`` when the run was built
    #: with ``ObsConfig(metrics=True)``; ``None`` otherwise.
    metrics: Optional[Dict[str, Any]] = None

    @property
    def be_lost(self) -> int:
        return self.be_sent - self.be_received

    @property
    def churn_ok(self) -> bool:
        """Every churned flit delivered and every admitted connection
        closed again (admission rejections are by design)."""
        if self.churn is None:
            return True
        return (self.churn["delivered"] == self.churn["flits_sent"]
                and self.churn["closed"] == self.churn["opened"])

    @property
    def passed(self) -> bool:
        """All QoS verdicts hold, nothing was lost, churn conserved its
        flits and connections, and an injected failure (if any) was
        loudly detected."""
        if self.failure_expected:
            return self.failure_detected
        return (self.be_lost == 0 and self.churn_ok
                and all(verdict.ok for verdict in self.gs))

    def failures(self) -> List[str]:
        """Human-readable list of everything that went wrong."""
        problems: List[str] = []
        if self.failure_expected:
            if not self.failure_detected:
                problems.append(
                    f"injected {self.failure_kind} was not detected")
            return problems
        if self.be_lost:
            problems.append(f"{self.be_lost} BE packets lost "
                            f"({self.be_received}/{self.be_sent})")
        if not self.churn_ok:
            problems.append(
                f"churn: {self.churn['delivered']}/"
                f"{self.churn['flits_sent']} flits delivered, "
                f"{self.churn['closed']}/{self.churn['opened']} "
                "connections closed")
        for verdict in self.gs:
            if not verdict.complete:
                problems.append(
                    f"GS {verdict.label}: {verdict.delivered}/"
                    f"{verdict.offered} flits delivered")
            if not verdict.in_order:
                problems.append(f"GS {verdict.label}: out-of-order delivery")
            if verdict.latency_ok is False:
                problems.append(
                    f"GS {verdict.label}: max latency "
                    f"{verdict.observed_max_latency_ns:.2f} ns exceeds the "
                    f"contract bound {verdict.latency_bound_ns:.2f} ns")
        return problems

    def to_dict(self) -> Dict[str, Any]:
        # ``metrics`` rides along only when the run collected any, so
        # the serialized form of observability-off runs is unchanged.
        extra = {} if self.metrics is None else {"metrics": self.metrics}
        return {
            **extra,
            "name": self.name,
            "mesh": f"{self.cols}x{self.rows}",
            "backend": self.backend,
            "allocator": self.allocator,
            "topology": self.topology,
            "mode": self.mode,
            "retain_packets": self.retain_packets,
            "sim_ns": self.sim_ns,
            "wall_s": self.wall_s,
            "events": self.events,
            "flit_hops": self.flit_hops,
            "fingerprint": self.fingerprint,
            "be_sent": self.be_sent,
            "be_received": self.be_received,
            "be_lost": self.be_lost,
            "offered_load": self.offered_load,
            "accepted_load": self.accepted_load,
            "latency_mean_ns": self.latency_mean_ns,
            "latency_p50_ns": self.latency_p50_ns,
            "latency_p99_ns": self.latency_p99_ns,
            "gs": [verdict.to_dict() for verdict in self.gs],
            "failure_expected": self.failure_expected,
            "failure_detected": self.failure_detected,
            "failure_kind": self.failure_kind,
            "churn": self.churn,
            "passed": self.passed,
        }


class ScenarioRunner:
    """Build and run one scenario; every workload goes through here."""

    def __init__(self, spec: ScenarioSpec,
                 config: Optional[RouterConfig] = None,
                 retain_packets: Optional[bool] = None,
                 backend: Union[None, str, RouterBackend] = None,
                 allocator: str = "xy",
                 obs: Optional[ObsConfig] = None):
        spec.validate(config)
        # No explicit backend -> the spec's topology picks its default
        # (mesh cells run on mango, fabric cells on their fabric's
        # backend), so one registry drives every fabric.
        if backend is None:
            self.backend = backend_for_topology(spec.topology)
        else:
            self.backend = get_backend(backend)
        self.backend.check_spec(spec)
        self.spec = spec
        self.config = config
        self.retain_packets = (spec.retain_packets if retain_packets is None
                               else retain_packets)
        # The admission/route-search strategy (repro.alloc) the mango
        # network admits GS connections with; "xy" is the bit-identical
        # default the golden fingerprints pin.
        self.allocator = allocator
        # Observability choices for this run (metrics probes, a tracer
        # wired to the emit points, kernel profiling); None keeps every
        # hot path on the no-op branch.
        self.obs = obs
        self.metrics_registry: Optional[MetricsRegistry] = None
        if self._allocator_name() != "xy" and \
                not self.backend.supports_alternate_allocators:
            raise BackendCapabilityError(
                f"backend {self.backend.name!r} performs its own "
                f"admission control; the {self._allocator_name()!r} "
                "allocation strategy only applies to backends built on "
                "the MANGO connection manager")
        self.network: Optional[MangoNetwork] = None
        self.connections: List = []
        self.gs_sources: List = []
        self.churn_driver: Optional[ChurnDriver] = None
        self.workload: Optional[UniformBeWorkload] = None
        self._quantiles: Dict[float, P2Quantile] = {}
        self._expected_error: Optional[type] = None

    def _allocator_name(self) -> str:
        return getattr(self.allocator, "name", self.allocator)

    # -- construction ------------------------------------------------------

    def build(self):
        """Construct network, connections, sources and collectors
        (untimed) through the selected backend; see the module docstring
        for why the order is part of the determinism contract.

        Returns the backend's network — a :class:`MangoNetwork` for the
        ``mango``/``priority`` backends, otherwise whatever implements
        the duck-typed protocol of :mod:`repro.backends.base`."""
        spec = self.spec
        net = self.backend.build_network(spec, self.config, obs=self.obs)
        self.network = net
        if self._allocator_name() != "xy":
            # Capability-checked in __init__: this network exposes the
            # MANGO connection manager.
            net.connection_manager.allocator = self.allocator
        self.connections = [
            self.backend.open_connection(net, Coord(*gs.src),
                                         Coord(*gs.dst))
            for gs in spec.gs
        ]
        for gs, conn in zip(spec.gs, self.connections):
            if gs.traffic == "preload":
                for value in range(gs.flits):
                    conn.send(value, last=(value == gs.flits - 1))
            elif gs.traffic == "cbr":
                self.gs_sources.append(CbrSource(
                    net.sim, conn, period_ns=gs.period_ns, n_flits=gs.flits))
            elif gs.traffic == "bursty":
                self.gs_sources.append(BurstySource(
                    net.sim, conn, burst_len=gs.burst_len, gap_ns=gs.gap_ns,
                    n_bursts=gs.n_bursts, intra_ns=gs.intra_ns,
                    seed=gs.seed, jitter=gs.jitter))
        if spec.be is not None:
            # Result-level quantiles need one stream over every sink:
            # the runner's own P² estimators ride along as collector
            # observers (per-tile estimators stay untouched; the
            # simulation never reads any of them).
            self._quantiles = {q: P2Quantile(q) for q in RESULT_QUANTILES}
            self.workload = UniformBeWorkload(
                net, build_pattern(spec.be, net.mesh),
                slot_ns=spec.be.slot_ns, probability=spec.be.probability,
                payload_words=spec.be.payload_words,
                n_slots=spec.be.n_slots, seed=spec.be.seed,
                retain_packets=self.retain_packets,
                latency_observers=tuple(self._quantiles.values()))
        if spec.churn is not None:
            # After the static connections and the BE workload, so the
            # construction order (and with it every golden fingerprint
            # of the churn-free cells) is untouched.
            self.churn_driver = ChurnDriver(net, spec.churn)
        if spec.failure is not None:
            self._schedule_failure(net, spec.failure)
        if self.obs is not None and self.obs.metrics:
            # Last, so the probes (pure reads) and the optional sampler
            # process sit after every workload process — the relative
            # event order of the simulated work is untouched.
            self.metrics_registry = build_registry(
                net, sample_ns=self.obs.metrics_sample_ns,
                horizon_ns=spec.max_ns)
        return net

    def _schedule_failure(self, net: MangoNetwork,
                          failure: FailureSpec) -> None:
        from ..core.programming import ConfigFormatError, OP_SETUP
        from ..core.connection_table import TableError
        if failure.kind == "malformed_config":
            self._expected_error = ConfigFormatError
            magic_only = [0xC0 << 24 | (OP_SETUP << 20)]

            def inject():
                net.send_be(Coord(*failure.src), Coord(*failure.dst),
                            magic_only)
        else:  # orphan_flit
            self._expected_error = TableError
            router = net.routers[Coord(*failure.src)]

            def inject():
                from ..network.packet import GsFlit
                steering = router.switching.steer_to(
                    Direction.LOCAL, Direction.EAST,
                    net.config.vcs_per_port - 1)
                router.accept_gs_flit(Direction.LOCAL, steering, GsFlit(1))

        net.sim.defer(failure.at_ns, inject)

    # -- driving -----------------------------------------------------------

    def run(self, mode: str = "event",
            batch_events: int = 8192) -> ScenarioResult:
        """Build (if needed) and drive the scenario to completion.

        ``mode="event"`` waits on an ``AllOf`` over the source processes
        (the fast default); ``mode="batch"`` pumps ``run_batch`` slices
        of ``batch_events`` kernel events, the API callers use to
        interleave host-side work.  Both must produce the same flit-hop
        fingerprint — asserted by tests/scenarios/test_fingerprints.py.
        """
        if mode not in ("event", "batch"):
            raise ValueError(f"unknown drive mode {mode!r}")
        if self.network is None:
            self.build()
        net = self.network
        spec = self.spec
        sources = list(self.workload.sources) if self.workload else []
        sources += self.gs_sources
        if self.churn_driver is not None:
            sources.append(self.churn_driver)
        processes = [source.process for source in sources]

        failure_detected = False
        events_before = net.sim.events_processed
        start = time.perf_counter()
        try:
            if processes:
                done = net.sim.all_of(processes)
                if mode == "event":
                    if not net.sim.run_until_triggered(done,
                                                       max_ns=spec.max_ns):
                        raise RuntimeError(
                            f"scenario {spec.name!r} did not finish within "
                            f"{spec.max_ns} ns (deadlock or overload)")
                else:
                    while not done.triggered:
                        if net.run_batch(max_events=batch_events) == 0:
                            raise RuntimeError(
                                f"scenario {spec.name!r}: event heap "
                                "drained before the sources finished")
                        if net.now > spec.max_ns:
                            raise RuntimeError(
                                f"scenario {spec.name!r} did not finish "
                                f"within {spec.max_ns} ns")
                net.run(until=net.now + spec.drain_ns)
            else:
                # Preload-only scenarios have no driving processes: the
                # heap drains by itself once all flits are delivered.
                if mode == "event":
                    net.sim.run()
                else:
                    while net.run_batch(max_events=batch_events):
                        pass
        except Exception as error:
            if self._expected_error is not None and \
                    isinstance(error, self._expected_error):
                failure_detected = True
            else:
                raise
        wall_s = time.perf_counter() - start
        events = net.sim.events_processed - events_before
        return self._result(mode, events, wall_s, failure_detected)

    # -- measurement -------------------------------------------------------

    def _be_quantile(self, q: float) -> float:
        if self.workload is None:
            return float("nan")
        if self.retain_packets:
            return percentile(self.workload.latencies(), q)
        return self._quantiles[q].value

    def _verdicts(self) -> List[ConnectionVerdict]:
        config = self.network.config
        slack = LATENCY_SLACK_CYCLES * config.timing.link_cycle_ns
        verdicts = []
        for gs, conn in zip(self.spec.gs, self.connections):
            delivered = conn.sink.count
            payloads = conn.sink.payloads
            in_order = payloads == sorted(payloads)
            observed = (max(conn.sink.latencies)
                        if conn.sink.latencies else float("nan"))
            # The backend's own architectural bound when it has one, the
            # reference MANGO contract otherwise (how Section 4.1 turns
            # into an automated verdict: see docs/backends.md).
            bound = self.backend.latency_bound_ns(conn.n_hops,
                                                  config) + slack
            # Only paced, admissible streams carry a latency guarantee:
            # preloaded/bursty queues add source-side waiting the network
            # contract says nothing about.
            checked = gs.traffic == "cbr"
            latency_ok = None
            if checked and not math.isnan(observed):
                latency_ok = observed <= bound
            verdicts.append(ConnectionVerdict(
                label=f"{gs.src}->{gs.dst}",
                hops=conn.n_hops,
                traffic=gs.traffic,
                offered=gs.offered,
                delivered=delivered,
                complete=delivered == gs.offered,
                in_order=in_order,
                latency_checked=checked,
                observed_max_latency_ns=observed,
                latency_bound_ns=bound,
                latency_ok=latency_ok,
            ))
        return verdicts

    def _result(self, mode: str, events: int, wall_s: float,
                failure_detected: bool) -> ScenarioResult:
        net = self.network
        spec = self.spec
        sim_ns = net.now
        flit_hops = sum(link.gs_flits + link.be_flits
                        for link in net.links.values())
        be_sent = self.workload.sent if self.workload else 0
        be_received = self.workload.received if self.workload else 0
        if self.workload:
            stats = self.workload.latency_stats
            mean = stats.mean
        else:
            mean = float("nan")
        span = sim_ns if sim_ns > 0 else float("nan")
        failure_interrupted = spec.failure is not None
        gs = [] if failure_interrupted else self._verdicts()
        return ScenarioResult(
            name=spec.name,
            cols=spec.cols,
            rows=spec.rows,
            backend=self.backend.name,
            allocator=self._allocator_name(),
            topology=spec.topology,
            mode=mode,
            retain_packets=self.retain_packets,
            sim_ns=sim_ns,
            wall_s=wall_s,
            events=events,
            flit_hops=flit_hops,
            fingerprint=flit_hop_fingerprint(net),
            be_sent=be_sent,
            be_received=be_received,
            offered_load=be_sent / span,
            accepted_load=be_received / span,
            latency_mean_ns=mean,
            latency_p50_ns=self._be_quantile(50.0),
            latency_p99_ns=self._be_quantile(99.0),
            gs=gs,
            failure_expected=spec.failure is not None,
            failure_detected=failure_detected,
            failure_kind=spec.failure.kind if spec.failure else "",
            churn=(self.churn_driver.stats()
                   if self.churn_driver is not None else None),
            metrics=(self.metrics_registry.snapshot().to_dict()
                     if self.metrics_registry is not None else None),
        )
