"""Declarative scenario specifications.

A :class:`ScenarioSpec` describes one complete experiment — mesh size,
BE traffic pattern and injection rate, GS connection set, failure
injection, seeds and duration — as plain data.  Specs round-trip through
dictionaries (JSON-safe), validate themselves against the mesh geometry
and the QoS admission rules, and scale down to a ``smoke`` profile so
the whole registry can run in CI.

The point (ROADMAP: "as many scenarios as you can imagine") is that a
new workload is a new *spec*, not a new hand-rolled driver: the
:class:`~repro.scenarios.runner.ScenarioRunner` turns any spec into a
network, traffic and measurement in exactly one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..analysis.qos import contract_for_path, loop_contract_for_path
from ..core.config import RouterConfig
from ..network.routing import max_route_hops
from ..network.topology import Coord, Topology, build_topology

__all__ = [
    "ScenarioError",
    "GsConnectionSpec",
    "BeTrafficSpec",
    "FailureSpec",
    "ChurnSpec",
    "ScenarioSpec",
    "PATTERN_NAMES",
    "GS_TRAFFIC_KINDS",
    "FAILURE_KINDS",
]

#: Spatial patterns the runner can instantiate (see traffic.patterns).
PATTERN_NAMES = ("uniform", "local_uniform", "transpose", "bit_complement",
                 "nearest_neighbor", "hotspot")

#: How a GS connection is driven.
GS_TRAFFIC_KINDS = ("preload", "cbr", "bursty")

#: Protocol violations the runner can inject mid-run.
FAILURE_KINDS = ("malformed_config", "orphan_flit")

#: Smoke-profile caps (see :meth:`ScenarioSpec.smoke`).
SMOKE_MAX_SLOTS = 6
SMOKE_MAX_FLITS = 20
SMOKE_MAX_BURSTS = 2
SMOKE_MAX_CYCLES = 2


class ScenarioError(ValueError):
    """A scenario specification is inconsistent or inadmissible."""


def _coord(value) -> Tuple[int, int]:
    """Normalise a coordinate-ish value to an ``(x, y)`` int tuple."""
    x, y = value
    return (int(x), int(y))


def _is_mesh(topology: Optional[Topology]) -> bool:
    """Whether validation runs under mesh semantics (the default when
    no topology object is supplied — legacy two-argument calls)."""
    return topology is None or topology.name == "mesh"


def _check_endpoints(label: str, src: Tuple[int, int],
                     dst: Tuple[int, int], cols: int, rows: int,
                     topology: Optional[Topology] = None) -> None:
    """Shared endpoint validation for anything that names a GS pair:
    both ends nodes of the chosen topology, distinct, and (on the mesh)
    the XY hop count within the chained route-header capacity (one copy
    of the hop-cap rule, so a header revision cannot silently diverge
    between spec kinds).  A bad endpoint is a *spec* error naming the
    topology and its node set — never a late ``KeyError`` deep in the
    runner."""
    for which, (x, y) in (("src", src), ("dst", dst)):
        if not (0 <= x < cols and 0 <= y < rows):
            if _is_mesh(topology):
                raise ScenarioError(
                    f"{label} {which} {(x, y)} outside the "
                    f"{cols}x{rows} mesh")
            raise ScenarioError(
                f"{label} {which} {(x, y)} is not a node of the "
                f"{topology.name!r} topology, which has "
                f"{topology.node_set_summary()}")
    if tuple(src) == tuple(dst):
        raise ScenarioError(f"{label} {src} -> {dst}: src == dst")
    if _is_mesh(topology):
        # Mesh routes ride chained source-route headers; the other
        # fabrics carry no route header (flits follow their admitted
        # port sequence), so no hop cap applies there.
        (sx, sy), (dx, dy) = src, dst
        hops = abs(sx - dx) + abs(sy - dy)
        if hops > max_route_hops():
            raise ScenarioError(
                f"{label} {src} -> {dst} needs {hops} hops > the "
                f"{max_route_hops()}-hop capacity of chained "
                "source-route headers")


@dataclass(frozen=True)
class GsConnectionSpec:
    """One GS connection and the traffic offered over it.

    ``traffic`` selects the driver:

    * ``preload`` — all ``flits`` queued at t=0 (throughput/ordering
      runs; sink latencies include source queueing, so no latency
      verdict);
    * ``cbr`` — a :class:`~repro.traffic.generators.CbrSource` pacing
      one flit per ``period_ns`` (the rate must be admissible under the
      path's :class:`~repro.analysis.qos.QosContract`, and the latency
      verdict applies);
    * ``bursty`` — a :class:`~repro.traffic.generators.BurstySource`
      sending ``n_bursts`` bursts of ``burst_len`` flits.
    """

    src: Tuple[int, int]
    dst: Tuple[int, int]
    traffic: str = "preload"
    flits: int = 50
    period_ns: float = 25.0
    burst_len: int = 16
    gap_ns: float = 600.0
    n_bursts: int = 4
    intra_ns: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    @property
    def offered(self) -> int:
        """Flits this connection will inject over the whole run."""
        if self.traffic == "bursty":
            return self.burst_len * self.n_bursts
        return self.flits

    def hops(self) -> int:
        (sx, sy), (dx, dy) = self.src, self.dst
        return abs(sx - dx) + abs(sy - dy)

    def validate(self, cols: int, rows: int,
                 config: Optional[RouterConfig] = None,
                 topology: Optional[Topology] = None) -> None:
        if self.traffic not in GS_TRAFFIC_KINDS:
            raise ScenarioError(
                f"unknown GS traffic kind {self.traffic!r} "
                f"(one of {GS_TRAFFIC_KINDS})")
        _check_endpoints("GS", self.src, self.dst, cols, rows, topology)
        if self.traffic in ("preload", "cbr") and self.flits < 1:
            raise ScenarioError("GS connection offers no flits")
        if self.traffic == "cbr":
            if self.period_ns <= 0:
                raise ScenarioError("CBR period must be positive")
            config = config or RouterConfig()
            if _is_mesh(topology):
                contract = contract_for_path(self.hops(), config)
            else:
                # Fabric links are shared by at most vcs_per_port GS
                # connections; the admissible rate follows the fabric's
                # own share-based contract over its route length.
                contract = loop_contract_for_path(
                    topology.min_hops(Coord(*self.src), Coord(*self.dst)),
                    gs_capacity=config.vcs_per_port, config=config)
            rate = 1.0 / self.period_ns
            if not contract.admits_rate(rate):
                raise ScenarioError(
                    f"CBR rate {rate:.5f} flits/ns exceeds the guaranteed "
                    f"{contract.min_bandwidth_flits_per_ns:.5f} flits/ns "
                    f"over {contract.hops} hops — the contract cannot "
                    "hold")
        if self.traffic == "bursty":
            if self.burst_len < 1 or self.n_bursts < 1:
                raise ScenarioError("bursts must be non-empty")
            if self.gap_ns < 0 or self.intra_ns < 0:
                raise ScenarioError("burst gaps must be non-negative")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["src"] = list(self.src)
        data["dst"] = list(self.dst)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GsConnectionSpec":
        data = dict(data)
        data["src"] = _coord(data["src"])
        data["dst"] = _coord(data["dst"])
        return cls(**data)


@dataclass(frozen=True)
class BeTrafficSpec:
    """Best-effort background: every tile runs a slotted Bernoulli source
    under a spatial ``pattern`` (see :data:`PATTERN_NAMES`)."""

    pattern: str
    slot_ns: float = 25.0
    probability: float = 0.2
    payload_words: int = 2
    n_slots: int = 30
    pattern_seed: int = 0
    seed: int = 0
    radius: int = 14                          # local_uniform only
    hotspot: Optional[Tuple[int, int]] = None  # hotspot only
    fraction: float = 0.5                      # hotspot only

    def validate(self, cols: int, rows: int,
                 topology: Optional[Topology] = None) -> None:
        if self.pattern not in PATTERN_NAMES:
            raise ScenarioError(f"unknown pattern {self.pattern!r} "
                                f"(one of {PATTERN_NAMES})")
        if self.slot_ns <= 0:
            raise ScenarioError("slot must be positive")
        if not 0 <= self.probability <= 1:
            raise ScenarioError("injection probability must be in [0, 1]")
        if self.payload_words < 0:
            raise ScenarioError("payload words must be non-negative")
        if self.n_slots < 1:
            raise ScenarioError("need at least one slot")
        if self.pattern == "local_uniform":
            if self.radius < 1:
                raise ScenarioError("local_uniform radius must be >= 1 hop")
            if _is_mesh(topology) and self.radius > max_route_hops():
                raise ScenarioError(
                    f"local_uniform radius {self.radius} exceeds the "
                    f"{max_route_hops()}-hop chained source-route "
                    "capacity")
        if self.pattern == "hotspot":
            if not 0 <= self.fraction <= 1:
                raise ScenarioError("hotspot fraction must be in [0, 1]")
            if self.hotspot is not None:
                x, y = self.hotspot
                if not (0 <= x < cols and 0 <= y < rows):
                    if _is_mesh(topology):
                        raise ScenarioError(
                            f"hotspot {(x, y)} outside the "
                            f"{cols}x{rows} mesh")
                    raise ScenarioError(
                        f"hotspot {(x, y)} is not a node of the "
                        f"{topology.name!r} topology, which has "
                        f"{topology.node_set_summary()}")
        # Uniform, transpose, bit-complement and hotspot can all draw
        # full-diameter routes (transpose/hotspot via their uniform
        # fallback component).  Chained route headers carry any route up
        # to max_route_hops(), so full-diameter traffic is legal on
        # every mesh the chain can span — 16x16 (30-hop diameter)
        # included.  The non-grid fabrics carry no route header, so the
        # cap is mesh-only.
        if _is_mesh(topology) and \
                self.pattern not in ("nearest_neighbor", "local_uniform") \
                and (cols - 1) + (rows - 1) > max_route_hops():
            raise ScenarioError(
                f"pattern {self.pattern!r} draws routes up to the "
                f"{(cols - 1) + (rows - 1)}-hop mesh diameter, beyond "
                f"the {max_route_hops()}-hop capacity of chained "
                "source-route headers")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        if self.hotspot is not None:
            data["hotspot"] = list(self.hotspot)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BeTrafficSpec":
        data = dict(data)
        if data.get("hotspot") is not None:
            data["hotspot"] = _coord(data["hotspot"])
        return cls(**data)


@dataclass(frozen=True)
class FailureSpec:
    """A protocol violation injected at ``at_ns`` — the network must
    detect it loudly (typed error) instead of corrupting state.

    * ``malformed_config`` — a BE packet carrying the config magic but a
      truncated body, sent ``src`` -> ``dst``; the programming interface
      at ``dst`` must raise ``ConfigFormatError``.
    * ``orphan_flit`` — a GS flit steered into an unprogrammed VC buffer
      at ``src``; forwarding must raise ``TableError``.
    """

    kind: str
    at_ns: float = 200.0
    src: Tuple[int, int] = (0, 0)
    dst: Tuple[int, int] = (1, 0)

    def validate(self, cols: int, rows: int) -> None:
        if self.kind not in FAILURE_KINDS:
            raise ScenarioError(f"unknown failure kind {self.kind!r} "
                                f"(one of {FAILURE_KINDS})")
        if self.at_ns < 0:
            raise ScenarioError("failure time must be non-negative")
        for which, (x, y) in (("src", self.src), ("dst", self.dst)):
            if not (0 <= x < cols and 0 <= y < rows):
                raise ScenarioError(
                    f"failure {which} {(x, y)} outside the mesh")
        if self.kind == "malformed_config" and self.src == self.dst:
            raise ScenarioError("malformed_config needs src != dst")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["src"] = list(self.src)
        data["dst"] = list(self.dst)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FailureSpec":
        data = dict(data)
        data["src"] = _coord(data["src"])
        data["dst"] = _coord(data["dst"])
        return cls(**data)


@dataclass(frozen=True)
class ChurnSpec:
    """Runtime connection churn: GS connections opened and closed
    *during* the run through the real programming protocol (BE config
    packets + acks), not pre-opened at build time.

    Every cycle, each ``(src, dst)`` pair is requested through
    ``ConnectionManager.open``; admitted connections carry
    ``flits_per_open`` flits, are drained, and are closed again before
    the next cycle.  Admission rejections are counted, not fatal — a
    saturated churn cell deterministically rejects the same opens every
    cycle.  ``want_ack=False`` exercises the fire-and-forget setup
    path (the driver waits ``settle_ns`` for the table writes to land
    before sending).
    """

    pairs: Tuple[Tuple[Tuple[int, int], Tuple[int, int]], ...]
    cycles: int = 3
    flits_per_open: int = 8
    want_ack: bool = True
    settle_ns: float = 200.0   # post-drain (and no-ack post-open) wait
    poll_ns: float = 50.0      # delivery polling interval
    #: Per-cycle delivery deadline: a connection whose sink has not
    #: drained by then is recorded as a shortfall (failing the churn
    #: verdict) instead of being polled forever into the run's max_ns
    #: timeout, which would mask the loss.
    deliver_timeout_ns: float = 50000.0

    def validate(self, cols: int, rows: int) -> None:
        if not self.pairs:
            raise ScenarioError("churn needs at least one (src, dst) pair")
        for src, dst in self.pairs:
            _check_endpoints("churn", src, dst, cols, rows)
        if self.cycles < 1:
            raise ScenarioError("churn needs at least one cycle")
        if self.flits_per_open < 1:
            raise ScenarioError("churned connections must carry flits")
        if self.settle_ns < 0:
            raise ScenarioError("churn settle must be non-negative")
        if self.poll_ns <= 0:
            raise ScenarioError("churn poll interval must be positive")
        if self.deliver_timeout_ns <= 0:
            raise ScenarioError("churn delivery deadline must be positive")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["pairs"] = [[list(src), list(dst)] for src, dst in self.pairs]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChurnSpec":
        data = dict(data)
        data["pairs"] = tuple((_coord(src), _coord(dst))
                              for src, dst in data["pairs"])
        return cls(**data)


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible experiment as plain data."""

    name: str
    cols: int
    rows: int
    #: Fabric the scenario runs on (a registered topology name; see
    #: :func:`repro.network.topology.topology_names`).  The runner
    #: resolves it to a default backend when none is named explicitly.
    topology: str = "mesh"
    be: Optional[BeTrafficSpec] = None
    gs: Tuple[GsConnectionSpec, ...] = ()
    failure: Optional[FailureSpec] = None
    churn: Optional[ChurnSpec] = None
    drain_ns: float = 8000.0
    max_ns: float = 5e6
    retain_packets: bool = False
    description: str = ""
    tags: Tuple[str, ...] = ()

    def make_topology(self, config: Optional[RouterConfig] = None
                      ) -> Topology:
        """Instantiate the spec's fabric (raises :class:`ScenarioError`
        for unknown names or dimensions the fabric cannot wire)."""
        config = config or RouterConfig()
        try:
            return build_topology(self.topology, self.cols, self.rows,
                                  link_length_mm=config.link_length_mm,
                                  link_stages=config.link_stages)
        except KeyError as exc:
            raise ScenarioError(
                f"scenario {self.name!r}: {exc.args[0]}") from None
        except ValueError as exc:
            raise ScenarioError(
                f"scenario {self.name!r}: {exc}") from None

    def validate(self, config: Optional[RouterConfig] = None) -> None:
        if not self.name:
            raise ScenarioError("a scenario needs a name")
        if self.cols < 1 or self.rows < 1:
            raise ScenarioError("mesh dimensions must be positive")
        if self.cols * self.rows < 2:
            raise ScenarioError("a network needs at least two tiles")
        topology = self.make_topology(config)
        if self.be is None and not self.gs and self.failure is None \
                and self.churn is None:
            raise ScenarioError(
                f"scenario {self.name!r} drives no traffic at all")
        if self.drain_ns < 0:
            raise ScenarioError("drain must be non-negative")
        if self.max_ns <= 0:
            raise ScenarioError("max_ns must be positive")
        if self.be is not None:
            self.be.validate(self.cols, self.rows, topology)
        for gs in self.gs:
            gs.validate(self.cols, self.rows, config, topology)
        if self.failure is not None:
            self.failure.validate(self.cols, self.rows)
        if self.churn is not None:
            self.churn.validate(self.cols, self.rows)

    def smoke(self) -> "ScenarioSpec":
        """A scaled-down copy for CI: same mesh, pattern, seeds and
        checks, but capped slot/flit/burst/cycle counts so the whole
        registry runs in seconds.  Idempotent (smoke of smoke ==
        smoke)."""
        be = self.be
        if be is not None and be.n_slots > SMOKE_MAX_SLOTS:
            be = dataclasses.replace(be, n_slots=SMOKE_MAX_SLOTS)
        gs = tuple(
            dataclasses.replace(
                g, flits=min(g.flits, SMOKE_MAX_FLITS),
                n_bursts=min(g.n_bursts, SMOKE_MAX_BURSTS))
            for g in self.gs)
        churn = self.churn
        if churn is not None and churn.cycles > SMOKE_MAX_CYCLES:
            churn = dataclasses.replace(churn, cycles=SMOKE_MAX_CYCLES)
        return dataclasses.replace(self, be=be, gs=gs, churn=churn)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cols": self.cols,
            "rows": self.rows,
            "topology": self.topology,
            "be": self.be.to_dict() if self.be is not None else None,
            "gs": [g.to_dict() for g in self.gs],
            "failure": (self.failure.to_dict()
                        if self.failure is not None else None),
            "churn": (self.churn.to_dict()
                      if self.churn is not None else None),
            "drain_ns": self.drain_ns,
            "max_ns": self.max_ns,
            "retain_packets": self.retain_packets,
            "description": self.description,
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        be = data.get("be")
        failure = data.get("failure")
        data["be"] = BeTrafficSpec.from_dict(be) if be is not None else None
        data["gs"] = tuple(GsConnectionSpec.from_dict(g)
                           for g in data.get("gs", ()))
        data["failure"] = (FailureSpec.from_dict(failure)
                           if failure is not None else None)
        churn = data.get("churn")
        data["churn"] = (ChurnSpec.from_dict(churn)
                         if churn is not None else None)
        data["tags"] = tuple(data.get("tags", ()))
        return cls(**data)
