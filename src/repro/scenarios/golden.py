"""Golden flit-hop fingerprints of every registry scenario at smoke
duration (event-mode drive, the spec's own ``retain_packets``).

``SMOKE_FINGERPRINTS`` pins every cell on its *default* backend —
``mango`` for mesh cells, the fabric's own backend for ``ring``/
``hring``/``routerless`` cells (see
``repro.backends.DEFAULT_BACKEND_BY_TOPOLOGY``).  Regenerate after an
*intentional* workload change with::

    PYTHONPATH=src python -m repro scenario matrix --smoke --update-golden

``BACKEND_SMOKE_FINGERPRINTS`` pins the non-MANGO backends on two cheap
smoke cells each (see ``tests/backends/``); these are recorded by hand
from a verified run — ``--update-golden`` deliberately refuses to touch
them, because a non-MANGO digest change means a *backend model* change,
which deserves its own review.  Note that ``tdm`` (and ``priority`` on
uncongested cells) can legitimately share digests with ``mango``: the
fingerprint hashes *where* every flit went, and backends that route XY
with identical injection timing move the same flits over the same links
— only backends whose flow control shifts the shared pattern-RNG draw
order (``generic-vc``'s packet-granular injection) diverge.

The determinism tests assert these digests are reproduced bit-identically
across hosts, across ``run`` vs ``run_batch`` driving, and across
``retain_packets`` True/False — a changed digest means the simulated
work itself changed, which must be a deliberate, reviewed event.
"""

from typing import Dict

__all__ = ["BACKEND_SMOKE_FINGERPRINTS", "SMOKE_FINGERPRINTS"]

#: Non-MANGO backends on the two conformance smoke cells
#: (backend -> scenario -> digest).  Hand-recorded; see module docstring.
BACKEND_SMOKE_FINGERPRINTS: Dict[str, Dict[str, str]] = {
    "generic-vc": {
        "be-uniform-4x4": "9be1b9c6afd0e281",
        "gs-cbr-4x4-uniform": "9b00f395db691a7a",
    },
    "tdm": {
        "be-uniform-4x4": "e638c3090fed3e4f",
        "gs-cbr-4x4-uniform": "86c9505519d7846f",
    },
    "priority": {
        "be-uniform-4x4": "e638c3090fed3e4f",
        "gs-cbr-4x4-uniform": "86c9505519d7846f",
    },
}

SMOKE_FINGERPRINTS: Dict[str, str] = {
    "be-bit-complement-4x4": "79198014b162c632",
    "be-bit-complement-8x8": "19f84ce8baa4ecaa",
    "be-hotspot-16x16": "de906872d9d529be",
    "be-hotspot-4x4": "d03ef122813a49c3",
    "be-hotspot-8x8": "39ced16bf96e407c",
    "be-local-uniform-16x16": "a9818b9676a8ae30",
    "be-nearest-neighbor-4x4": "d32801bd792babab",
    "be-nearest-neighbor-8x8": "9785b780887ed5ad",
    "be-transpose-16x16": "2ebbb3ba8bcbcad2",
    "be-transpose-4x4": "86d40988fa8dc557",
    "be-transpose-8x8": "ac362820e91db7fb",
    "be-uniform-16x16": "7d992f9f10bd32e6",
    "be-uniform-4x4": "e638c3090fed3e4f",
    "be-uniform-8x8": "7c32c91412e660a6",
    "chained-route-17x1": "32ae864a32c5819f",
    "corner-streams-6x6": "8e9c8ea7e97dbecb",
    "corner-streams-8x8": "4835b3f4b42da12e",
    "failure-malformed-config-2x2": "9da54ae5ffeab5ad",
    "failure-malformed-config-4x4-under-load": "3979ee5ddcce42f6",
    "failure-orphan-flit-4x4": "93b45f44073ef240",
    "gs-bursty-hotspot-4x4": "04932a36391d9098",
    "gs-bursty-video-8x8": "78c82031f66017a9",
    "gs-cbr-16x16-corners": "3e23cb34f372693a",
    "gs-cbr-16x16-local": "49fae44015bec464",
    "gs-cbr-4x4-uniform": "86c9505519d7846f",
    "gs-cbr-8x8-transpose": "0ae432f053b42f40",
    "gs-churn-8x8": "9b6ef5ae7566d08e",
    "gs-churn-saturated-16x16": "8b685eb3ebd39fc0",
    "gs-many-conns-6x6": "038b5f515e801148",
    "gs-under-saturation-4x4": "3ff53da446c382d3",
    "gs-under-saturation-8x8": "b11cebb20b835485",
    "gs-under-saturation-hotspot-8x8": "ccb22e42ea22448e",
    "hring-cbr-8x8": "2ec7178df5e74374",
    "ring-cbr-8x8": "19a6d05743fc0189",
    "ring-uni-cbr-4x4": "d743b7e10e8d854c",
    "routerless-cbr-8x8": "8d721927ca1f9212",
    "routerless-hotspot-4x4": "46343da65a896f11",
    "soak-ring-8x8": "002fa9c4b3eba4cd",
    "soak-uniform-8x8": "657fe69dbdafe11a",
}
