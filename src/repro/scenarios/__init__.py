"""Declarative scenario engine and QoS conformance matrix.

``ScenarioSpec`` describes an experiment as plain data, ``ScenarioRunner``
is the single place that turns a spec into a network + workload +
measurements, and ``registry`` holds the named matrix that the CLI
(``python -m repro scenario list|run|matrix``), the conformance tests and
the benchmarks all share.
"""

from .spec import (BeTrafficSpec, ChurnSpec, FailureSpec, GsConnectionSpec,
                   ScenarioError, ScenarioSpec)
from .runner import (ChurnDriver, ConnectionVerdict, ScenarioResult,
                     ScenarioRunner, build_pattern, flit_hop_fingerprint)
from . import registry
from .fleet import CellOutcome, FleetCell, run_cell, run_fleet
from .registry import SCENARIOS, get, names, register

__all__ = [
    "BeTrafficSpec",
    "CellOutcome",
    "ChurnDriver",
    "ChurnSpec",
    "ConnectionVerdict",
    "FailureSpec",
    "FleetCell",
    "GsConnectionSpec",
    "SCENARIOS",
    "ScenarioError",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "build_pattern",
    "flit_hop_fingerprint",
    "get",
    "names",
    "register",
    "registry",
    "run_cell",
    "run_fleet",
]
