"""Sharded scenario fleet: run matrix cells on N worker processes.

The conformance matrix (``python -m repro scenario matrix``) grew to
~37 registry cells x 6 backends x 3 allocators, all driven by one
sequential loop.  This module is the parallel executor behind
``--jobs N`` and ``python -m repro bench record``:

* a :class:`FleetCell` names one (scenario, backend, allocator,
  topology, smoke, mode) matrix cell as plain JSON-safe data, so any
  cross-product is a list comprehension away;
* :func:`run_cell` executes one cell and captures the outcome — ``ok``
  with the full :class:`~repro.scenarios.runner.ScenarioResult` dict,
  ``skip`` for :class:`~repro.backends.BackendCapabilityError`, or
  ``error`` with the traceback — so one crashing cell becomes an
  ``ERROR`` row instead of aborting the whole run;
* :func:`run_fleet` fans the cells out over a spawn-safe
  ``ProcessPoolExecutor`` (``jobs=1`` stays in-process, byte-identical
  to the historical serial loop) and returns outcomes in input order,
  so tables, golden checks and fingerprints are independent of
  completion order;
* results can be cached per cell, keyed on ``(spec JSON, backend,
  allocator, topology, mode, code fingerprint)`` — any source change
  under ``repro/`` invalidates every entry — with straggler-safe
  ``flock`` + atomic-rename publishing in the cache directory.

Workers never write shared files themselves (``benchmarks/results.txt``
included); all output funnels through the parent via the returned
outcome dicts.  See ``docs/benchmarks.md``.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "CellOutcome",
    "FleetCell",
    "cell_id",
    "code_fingerprint",
    "run_cell",
    "run_fleet",
]


@dataclass(frozen=True)
class FleetCell:
    """One matrix cell: a registry scenario replayed on one backend /
    allocator / topology combination, at smoke or full duration.

    ``backend=None`` resolves the spec's topology to its default
    backend (mesh cells on ``mango``, fabric cells on their fabric's
    backend); ``topology=None`` keeps the spec's own fabric — the same
    semantics as the ``scenario matrix`` flags.
    """

    name: str
    backend: Optional[str] = None
    allocator: str = "xy"
    topology: Optional[str] = None
    smoke: bool = True
    mode: str = "event"
    #: Collect the standard metrics probe set into the result payload
    #: (``scenario matrix --metrics``).  Probes are read-only, so the
    #: fingerprint is unchanged — but the axis is still part of the
    #: cache key, because the result *payload* differs.
    metrics: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FleetCell":
        return cls(**data)

    def resolve_spec(self):
        """The exact spec this cell runs (topology override applied
        first, then the smoke scaling — the serial loop's order)."""
        from .registry import get

        spec = get(self.name)
        if self.topology:
            spec = dataclasses.replace(spec, topology=self.topology)
        if self.smoke:
            spec = spec.smoke()
        return spec


def cell_id(cell: FleetCell) -> str:
    """Stable human-readable id, unique across a cross-product fleet
    (``BENCH_*.json`` cell key): the scenario name, qualified with any
    non-default axis, e.g. ``be-uniform-4x4[backend=tdm]``."""
    axes = []
    if cell.backend:
        axes.append(f"backend={cell.backend}")
    if cell.allocator != "xy":
        axes.append(f"allocator={cell.allocator}")
    if cell.topology:
        axes.append(f"topology={cell.topology}")
    if not cell.smoke:
        axes.append("full")
    if cell.mode != "event":
        axes.append(f"mode={cell.mode}")
    if cell.metrics:
        axes.append("metrics")
    if not axes:
        return cell.name
    return f"{cell.name}[{','.join(axes)}]"


@dataclass
class CellOutcome:
    """What happened to one cell.

    ``status`` is ``"ok"`` (``result`` holds the
    :meth:`~repro.scenarios.runner.ScenarioResult.to_dict` payload and
    ``failures`` the verdict problems), ``"skip"`` (capability-gated:
    ``reason`` names the incompatibility) or ``"error"`` (``reason`` is
    the exception, ``traceback`` the full trace).  ``wall_s`` covers
    build + run inside the worker; ``cached`` marks outcomes served
    from the result cache instead of a fresh run.

    ``started_at`` / ``ended_at`` are ``time.monotonic()`` stamps taken
    inside the worker.  ``CLOCK_MONOTONIC`` is system-wide, so stamps
    from different worker processes of one fleet run are directly
    comparable — the bench layer uses them to compute each cell's mean
    worker contention (how many cells ran concurrently with it), which
    contextualises events/sec recorded at ``--jobs > 1``.  They are
    meaningless across runs, so cached outcomes are excluded from
    contention math.
    """

    cell: FleetCell
    status: str
    result: Optional[Dict[str, Any]] = None
    failures: List[str] = field(default_factory=list)
    reason: str = ""
    traceback: str = ""
    wall_s: float = 0.0
    started_at: float = 0.0
    ended_at: float = 0.0
    cached: bool = False

    @property
    def passed(self) -> bool:
        return self.status == "ok" and bool(self.result["passed"])

    @property
    def verdict(self) -> str:
        if self.status == "skip":
            return "SKIP"
        if self.status == "error":
            return "ERROR"
        return "PASS" if self.passed else "FAIL"

    @property
    def fingerprint(self) -> Optional[str]:
        return self.result["fingerprint"] if self.status == "ok" else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell.to_dict(),
            "status": self.status,
            "result": self.result,
            "failures": list(self.failures),
            "reason": self.reason,
            "traceback": self.traceback,
            "wall_s": self.wall_s,
            "started_at": self.started_at,
            "ended_at": self.ended_at,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CellOutcome":
        data = dict(data)
        data["cell"] = FleetCell.from_dict(data["cell"])
        return cls(**data)


def run_cell(cell: FleetCell) -> CellOutcome:
    """Execute one cell, capturing every failure mode as data.

    This is the only place the fleet touches the runner, and it never
    raises: capability gaps become ``skip``, everything else —
    construction errors, simulation deadlocks, verdict machinery bugs —
    becomes ``error`` with the traceback preserved, so a single
    crashing cell reports an ``ERROR`` row instead of losing the whole
    partial table.
    """
    from ..backends import BackendCapabilityError
    from .runner import ScenarioRunner

    start = time.perf_counter()
    started_at = time.monotonic()

    def done(outcome: CellOutcome) -> CellOutcome:
        outcome.wall_s = time.perf_counter() - start
        outcome.started_at = started_at
        outcome.ended_at = time.monotonic()
        return outcome

    try:
        spec = cell.resolve_spec()
        obs = None
        if cell.metrics:
            from ..obs import ObsConfig
            obs = ObsConfig(metrics=True)
        runner = ScenarioRunner(spec, backend=cell.backend,
                                allocator=cell.allocator, obs=obs)
        result = runner.run(mode=cell.mode)
    except BackendCapabilityError as error:
        return done(CellOutcome(cell, "skip", reason=str(error)))
    except Exception as error:
        return done(CellOutcome(cell, "error",
                                reason=f"{type(error).__name__}: {error}",
                                traceback=traceback.format_exc()))
    return done(CellOutcome(cell, "ok", result=result.to_dict(),
                            failures=result.failures()))


def _worker(cell_data: Dict[str, Any]) -> Dict[str, Any]:
    """Spawn-safe pool entry point: plain dicts in, plain dicts out."""
    return run_cell(FleetCell.from_dict(cell_data)).to_dict()


# -- result cache ----------------------------------------------------------

def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (relative path + bytes).

    Part of every cache key: any change anywhere in the package —
    kernel, backends, specs, this module — invalidates every cached
    cell, so the cache can never serve results from stale code.
    """
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    for dirpath, dirnames, filenames in sorted(os.walk(root)):
        dirnames.sort()
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            digest.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()[:16]


def cache_key(cell: FleetCell, code_fp: str) -> str:
    """The cache key: resolved spec JSON + every run axis + code digest
    (the resolved spec covers smoke scaling and topology overrides)."""
    payload = json.dumps({
        "spec": cell.resolve_spec().to_dict(),
        "backend": cell.backend,
        "allocator": cell.allocator,
        "topology": cell.topology,
        "mode": cell.mode,
        "metrics": cell.metrics,
        "code": code_fp,
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]


@contextlib.contextmanager
def _locked(lock_path: str):
    """Exclusive advisory lock, straggler-safe: ``flock`` is released
    by the kernel when the holder dies, so a crashed worker can never
    wedge the cache directory."""
    import fcntl

    fd = os.open(lock_path, os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield
    finally:
        os.close(fd)  # closing drops the flock


class FleetCache:
    """Per-cell result cache: one JSON file per cache key.

    Writes publish via temp-file + ``os.replace`` under a per-key
    ``flock``, so readers only ever see complete entries; unreadable or
    truncated files are treated as misses and overwritten.
    """

    def __init__(self, root: str):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def store(self, key: str, payload: Dict[str, Any]) -> None:
        with _locked(self._path(key) + ".lock"):
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(payload, handle)
                os.replace(tmp, self._path(key))
            except BaseException:
                with contextlib.suppress(OSError):
                    os.unlink(tmp)
                raise


# -- the fleet -------------------------------------------------------------

def run_fleet(cells: Sequence[FleetCell], jobs: int = 1,
              cache_dir: Optional[str] = None) -> List[CellOutcome]:
    """Run every cell and return outcomes in input order.

    ``jobs=1`` executes in-process, sequentially — the exact behaviour
    (and fingerprints) of the historical serial matrix loop.  ``jobs>1``
    fans out over a ``spawn`` ``ProcessPoolExecutor``: every cell is an
    independent simulation with its own RNG seeds, so parallel outcomes
    are bit-identical to serial ones (asserted by
    ``tests/scenarios/test_fleet.py`` and ``benchmarks/bench_fleet.py``).

    With ``cache_dir``, ``ok``/``skip`` outcomes are persisted keyed on
    :func:`cache_key` and replayed on later runs (``cached=True``);
    ``error`` outcomes are never cached, so transient failures (OOM,
    interrupts) retry next time.
    """
    cells = list(cells)
    cache = FleetCache(cache_dir) if cache_dir else None
    code_fp = code_fingerprint() if cache else ""
    outcomes: List[Optional[CellOutcome]] = [None] * len(cells)
    pending = []
    for index, cell in enumerate(cells):
        key = None
        if cache is not None:
            try:
                key = cache_key(cell, code_fp)
            except Exception:
                key = None  # unresolvable spec: the worker reports it
            hit = cache.load(key) if key else None
            if hit is not None:
                try:
                    outcome = CellOutcome.from_dict(hit)
                except (KeyError, TypeError):
                    outcome = None  # stale schema: rerun
                if outcome is not None:
                    outcome.cached = True
                    outcomes[index] = outcome
                    continue
        pending.append((index, cell, key))

    def publish(index, key, outcome):
        outcomes[index] = outcome
        if cache is not None and key and outcome.status != "error":
            cache.store(key, outcome.to_dict())

    if jobs <= 1 or len(pending) <= 1:
        for index, cell, key in pending:
            publish(index, key, run_cell(cell))
    else:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor, as_completed

        context = multiprocessing.get_context("spawn")
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = {pool.submit(_worker, cell.to_dict()): (index, cell,
                                                              key)
                       for index, cell, key in pending}
            for future in as_completed(futures):
                index, cell, key = futures[future]
                try:
                    outcome = CellOutcome.from_dict(future.result())
                except Exception as error:
                    # The worker process itself died (e.g. OOM-killed):
                    # still one ERROR row, not a lost table.
                    outcome = CellOutcome(
                        cell, "error",
                        reason=f"worker failed: {error!r}")
                publish(index, key, outcome)
    return outcomes
