"""The named scenario matrix.

Every entry is a full-duration :class:`ScenarioSpec`; ``spec.smoke()``
gives the CI-sized profile the conformance suite and ``python -m repro
scenario matrix --smoke`` run.  The matrix spans the evaluation axes of
the paper's claims (and of the related QoS-NoC literature): spatial
pattern (uniform, local-uniform, transpose, bit-complement,
nearest-neighbour, hotspot) x mesh size (4x4 / 6x6 / 8x8 / 16x16) x
service mix (BE-only, GS+BE, GS under BE saturation, runtime
connection churn, failure injection).

Scenarios tagged ``churn`` open and close GS connections *during* the
run through the real programming protocol (``ChurnSpec``); the
saturated 16x16 cell deterministically rejects part of each cycle's
opens under the default ``xy`` admission strategy — replay it with
``--allocator min-adaptive`` to watch the allocation layer admit them
(see ``docs/allocation.md``).

``corner-streams-6x6`` / ``corner-streams-8x8`` reproduce exactly the
workload the kernel-throughput benchmark has always measured — their
full-duration flit-hop totals (18 484 / 29 396) are asserted in
``benchmarks/bench_kernel_throughput.py`` and must not drift.

Scenarios tagged ``chained`` carry routes beyond 15 hops on chained
route headers — the 16x16 full-diameter cells (uniform / transpose /
hotspot BE and the 30-hop corner-to-corner GS-CBR pair) plus
``chained-route-17x1``, the cheap non-``slow`` cell that keeps the
extension path in every smoke run.

Scenarios tagged ``soak`` form the endurance tier: >=10^8 scheduler
events per cell at full duration, ``retain_packets=False``, streaming
stats only (see ``docs/kernel.md``).  They carry ``slow`` and run in CI
at smoke profile via the ``soak-smoke`` job.

Scenarios tagged ``slow`` (the 16x16 cells and the soak tier) are
deselected from quick local loops with ``-m "not slow"``; everything
else runs in well under a second at smoke duration.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .spec import (BeTrafficSpec, ChurnSpec, FailureSpec, GsConnectionSpec,
                   ScenarioSpec)

__all__ = ["SCENARIOS", "register", "get", "names"]

SCENARIOS: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to the matrix (validated; unique name)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} already registered")
    spec.validate()
    SCENARIOS[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(names())
        raise KeyError(f"unknown scenario {name!r} (known: {known})") \
            from None


def names(tags: Iterable[str] = ()) -> List[str]:
    """Registered scenario names (sorted); filter by requiring ``tags``."""
    wanted = set(tags)
    return sorted(name for name, spec in SCENARIOS.items()
                  if wanted.issubset(spec.tags))


def _corners(side: int) -> List[Tuple[Tuple[int, int], Tuple[int, int]]]:
    top = side - 1
    return [((0, 0), (top, top)), ((top, 0), (0, top)),
            ((0, top), (top, 0)), ((top, top), (0, 0))]


def _corner_preloads(side: int, flits: int) -> Tuple[GsConnectionSpec, ...]:
    return tuple(GsConnectionSpec(src=src, dst=dst, traffic="preload",
                                  flits=flits)
                 for src, dst in _corners(side))


# -- BE-only: every pattern, small and large meshes -------------------------

register(ScenarioSpec(
    name="be-uniform-4x4", cols=4, rows=4,
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=40, pattern_seed=7, seed=9),
    description="Uniform-random BE load on a 4x4 mesh.",
    tags=("be-only", "uniform")))

register(ScenarioSpec(
    name="be-uniform-8x8", cols=8, rows=8,
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=3, n_slots=30, pattern_seed=7, seed=9),
    description="Uniform-random BE load on an 8x8 mesh.",
    tags=("be-only", "uniform")))

register(ScenarioSpec(
    name="be-local-uniform-16x16", cols=16, rows=16,
    be=BeTrafficSpec("local_uniform", slot_ns=40.0, probability=0.1,
                     payload_words=2, n_slots=12, radius=14,
                     pattern_seed=41, seed=43),
    drain_ns=30000.0,
    description="256 routers under radius-14 local-uniform BE load.",
    tags=("be-only", "local_uniform", "slow")))

register(ScenarioSpec(
    name="be-uniform-16x16", cols=16, rows=16,
    be=BeTrafficSpec("uniform", slot_ns=40.0, probability=0.08,
                     payload_words=2, n_slots=12, pattern_seed=7, seed=9),
    drain_ns=40000.0,
    description="Full-diameter uniform-random BE load on a 16x16 mesh — "
                "routes up to 30 hops ride chained route headers.",
    tags=("be-only", "uniform", "chained", "slow")))

register(ScenarioSpec(
    name="be-transpose-4x4", cols=4, rows=4,
    be=BeTrafficSpec("transpose", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=40, pattern_seed=11, seed=13),
    description="Transpose (x,y)->(y,x) BE load on a 4x4 mesh.",
    tags=("be-only", "transpose")))

register(ScenarioSpec(
    name="be-transpose-8x8", cols=8, rows=8,
    be=BeTrafficSpec("transpose", slot_ns=25.0, probability=0.25,
                     payload_words=3, n_slots=30, pattern_seed=11, seed=17),
    drain_ns=30000.0,
    description="Diagonal-heavy transpose BE load on an 8x8 mesh.",
    tags=("be-only", "transpose")))

register(ScenarioSpec(
    name="be-transpose-16x16", cols=16, rows=16,
    be=BeTrafficSpec("transpose", slot_ns=40.0, probability=0.08,
                     payload_words=2, n_slots=12, pattern_seed=11,
                     seed=17),
    drain_ns=40000.0,
    description="Diagonal-heavy transpose BE load at 256-router scale; "
                "the (0,15)/(15,0) pairs cross the full 30-hop diameter "
                "on chained route headers.",
    tags=("be-only", "transpose", "chained", "slow")))

register(ScenarioSpec(
    name="be-bit-complement-4x4", cols=4, rows=4,
    be=BeTrafficSpec("bit_complement", slot_ns=20.0, probability=0.3,
                     payload_words=2, n_slots=40, pattern_seed=19, seed=21),
    description="Bit-complement BE load on a 4x4 mesh.",
    tags=("be-only", "bit_complement")))

register(ScenarioSpec(
    name="be-bit-complement-8x8", cols=8, rows=8,
    be=BeTrafficSpec("bit_complement", slot_ns=25.0, probability=0.2,
                     payload_words=2, n_slots=30, pattern_seed=19, seed=23),
    drain_ns=30000.0,
    description="Bit-complement BE load on an 8x8 mesh (max-distance "
                "bisection crossing).",
    tags=("be-only", "bit_complement")))

register(ScenarioSpec(
    name="be-nearest-neighbor-4x4", cols=4, rows=4,
    be=BeTrafficSpec("nearest_neighbor", slot_ns=15.0, probability=0.5,
                     payload_words=2, n_slots=50, pattern_seed=27, seed=29),
    description="High-rate single-hop nearest-neighbour BE load.",
    tags=("be-only", "nearest_neighbor")))

register(ScenarioSpec(
    name="be-nearest-neighbor-8x8", cols=8, rows=8,
    be=BeTrafficSpec("nearest_neighbor", slot_ns=15.0, probability=0.4,
                     payload_words=2, n_slots=40, pattern_seed=27, seed=31),
    description="Nearest-neighbour BE load at 8x8 scale.",
    tags=("be-only", "nearest_neighbor")))

register(ScenarioSpec(
    name="be-hotspot-4x4", cols=4, rows=4,
    be=BeTrafficSpec("hotspot", slot_ns=30.0, probability=0.2,
                     payload_words=2, n_slots=30, hotspot=(2, 2),
                     fraction=0.5, pattern_seed=3, seed=5),
    description="Half of all BE traffic converges on tile (2,2).",
    tags=("be-only", "hotspot")))

register(ScenarioSpec(
    name="be-hotspot-8x8", cols=8, rows=8,
    be=BeTrafficSpec("hotspot", slot_ns=30.0, probability=0.2,
                     payload_words=2, n_slots=30, hotspot=(4, 4),
                     fraction=0.5, pattern_seed=3, seed=5),
    drain_ns=30000.0,
    description="Half of all BE traffic converges on tile (4,4) of an "
                "8x8 mesh (credit backpressure, no drops).",
    tags=("be-only", "hotspot")))

register(ScenarioSpec(
    name="be-hotspot-16x16", cols=16, rows=16,
    be=BeTrafficSpec("hotspot", slot_ns=40.0, probability=0.08,
                     payload_words=2, n_slots=12, hotspot=(8, 8),
                     fraction=0.5, pattern_seed=3, seed=5),
    drain_ns=40000.0,
    description="Half of all BE traffic converges on tile (8,8) of a "
                "16x16 mesh; corner sources reach it (and their uniform "
                "fallback draws) over chained route headers.",
    tags=("be-only", "hotspot", "chained", "slow")))

# -- GS + BE: mixed service classes -----------------------------------------

register(ScenarioSpec(
    name="corner-streams-6x6", cols=6, rows=6,
    gs=_corner_preloads(6, 200),
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=60, pattern_seed=7, seed=9),
    drain_ns=12000.0,
    description="Four preloaded corner-to-corner GS streams over a "
                "uniform BE storm (the kernel-throughput reference "
                "workload).",
    tags=("gs+be", "uniform", "benchmark")))

register(ScenarioSpec(
    name="corner-streams-8x8", cols=8, rows=8,
    gs=_corner_preloads(8, 150),
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=50, pattern_seed=7, seed=9),
    drain_ns=12000.0,
    description="Four preloaded 14-hop GS streams over a uniform BE "
                "storm (the kernel-throughput reference workload).",
    tags=("gs+be", "uniform", "benchmark")))

register(ScenarioSpec(
    name="gs-many-conns-6x6", cols=6, rows=6,
    gs=tuple(GsConnectionSpec(src=src, dst=dst, traffic="preload", flits=60)
             for src, dst in [((0, 0), (5, 5)), ((5, 0), (0, 5)),
                              ((0, 5), (5, 0)), ((5, 5), (0, 0)),
                              ((2, 0), (2, 5)), ((0, 3), (5, 3))]),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.3,
                     payload_words=3, n_slots=40, pattern_seed=31, seed=37),
    drain_ns=25000.0,
    description="Six simultaneous GS connections under a uniform BE "
                "storm (ordering + conservation).",
    tags=("gs+be", "uniform")))

register(ScenarioSpec(
    name="gs-cbr-4x4-uniform", cols=4, rows=4,
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 3), traffic="cbr",
                         flits=100, period_ns=120.0),
        GsConnectionSpec(src=(3, 0), dst=(0, 3), traffic="cbr",
                         flits=100, period_ns=120.0)),
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=40, pattern_seed=7, seed=9),
    description="Two admissible 6-hop CBR streams with full latency "
                "verdicts under uniform BE background.",
    tags=("gs+be", "uniform", "cbr")))

register(ScenarioSpec(
    name="gs-cbr-8x8-transpose", cols=8, rows=8,
    gs=(GsConnectionSpec(src=(0, 3), dst=(7, 3), traffic="cbr",
                         flits=80, period_ns=140.0),
        GsConnectionSpec(src=(3, 0), dst=(3, 7), traffic="cbr",
                         flits=80, period_ns=140.0)),
    be=BeTrafficSpec("transpose", slot_ns=25.0, probability=0.25,
                     payload_words=3, n_slots=30, pattern_seed=11, seed=17),
    drain_ns=30000.0,
    description="Row/column CBR streams crossing the transpose "
                "diagonal's congestion.",
    tags=("gs+be", "transpose", "cbr")))

register(ScenarioSpec(
    name="gs-cbr-16x16-local", cols=16, rows=16,
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 7), traffic="cbr",
                         flits=60, period_ns=260.0),
        GsConnectionSpec(src=(15, 15), dst=(8, 8), traffic="cbr",
                         flits=60, period_ns=260.0)),
    be=BeTrafficSpec("local_uniform", slot_ns=40.0, probability=0.1,
                     payload_words=2, n_slots=12, radius=14,
                     pattern_seed=41, seed=43),
    drain_ns=30000.0,
    description="14-hop CBR streams with latency verdicts at 256-router "
                "scale.",
    tags=("gs+be", "local_uniform", "cbr", "slow")))

register(ScenarioSpec(
    name="gs-cbr-16x16-corners", cols=16, rows=16,
    gs=(GsConnectionSpec(src=(0, 0), dst=(15, 15), traffic="cbr",
                         flits=40, period_ns=260.0),
        GsConnectionSpec(src=(15, 0), dst=(0, 15), traffic="cbr",
                         flits=40, period_ns=260.0)),
    be=BeTrafficSpec("uniform", slot_ns=40.0, probability=0.08,
                     payload_words=2, n_slots=12, pattern_seed=41,
                     seed=43),
    drain_ns=60000.0,
    description="Corner-to-corner 30-hop CBR streams — GS connections "
                "set up through chained-route programming packets, with "
                "full latency verdicts — over full-diameter uniform BE.",
    tags=("gs+be", "uniform", "cbr", "chained", "slow")))

register(ScenarioSpec(
    name="chained-route-17x1", cols=17, rows=1,
    gs=(GsConnectionSpec(src=(0, 0), dst=(16, 0), traffic="preload",
                         flits=30),),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=2, n_slots=12, pattern_seed=7, seed=9),
    drain_ns=12000.0,
    description="A 17-tile line: the 16-hop corner stream and the "
                "longest BE draws all need a chained extension word — "
                "the cheap smoke cell that exercises the >15-hop path "
                "on every CI run.",
    tags=("gs+be", "uniform", "chained")))

register(ScenarioSpec(
    name="gs-bursty-video-8x8", cols=8, rows=8,
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 6), traffic="bursty",
                         burst_len=16, gap_ns=600.0, n_bursts=6,
                         intra_ns=6.0, jitter=0.3, seed=23),
        GsConnectionSpec(src=(7, 0), dst=(0, 6), traffic="bursty",
                         burst_len=16, gap_ns=600.0, n_bursts=6,
                         intra_ns=6.0, jitter=0.3, seed=24),
        GsConnectionSpec(src=(0, 7), dst=(6, 0), traffic="bursty",
                         burst_len=16, gap_ns=600.0, n_bursts=6,
                         intra_ns=6.0, jitter=0.3, seed=25)),
    be=BeTrafficSpec("uniform", slot_ns=40.0, probability=0.15,
                     payload_words=2, n_slots=25, pattern_seed=29, seed=31),
    drain_ns=40000.0,
    description="Bursty video-frame GS sources over long routes with a "
                "BE storm underneath.",
    tags=("gs+be", "uniform", "bursty")))

register(ScenarioSpec(
    name="gs-bursty-hotspot-4x4", cols=4, rows=4,
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 3), traffic="bursty",
                         burst_len=8, gap_ns=400.0, n_bursts=5,
                         intra_ns=4.0, seed=47),),
    be=BeTrafficSpec("hotspot", slot_ns=25.0, probability=0.25,
                     payload_words=2, n_slots=30, hotspot=(2, 2),
                     fraction=0.6, pattern_seed=3, seed=5),
    description="A bursty GS stream crossing a BE hotspot.",
    tags=("gs+be", "hotspot", "bursty")))

# -- GS under BE saturation: the paper's central isolation claim ------------

register(ScenarioSpec(
    name="gs-under-saturation-4x4", cols=4, rows=4,
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 3), traffic="cbr",
                         flits=80, period_ns=120.0),),
    be=BeTrafficSpec("uniform", slot_ns=12.0, probability=0.9,
                     payload_words=4, n_slots=60, pattern_seed=7, seed=9),
    drain_ns=30000.0, max_ns=2e6,
    description="An admissible CBR stream must keep its latency bound "
                "while every tile saturates the mesh with BE packets.",
    tags=("gs-under-saturation", "uniform", "cbr")))

register(ScenarioSpec(
    name="gs-under-saturation-8x8", cols=8, rows=8,
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 7), traffic="cbr",
                         flits=60, period_ns=260.0),
        GsConnectionSpec(src=(7, 0), dst=(0, 7), traffic="cbr",
                         flits=60, period_ns=260.0)),
    be=BeTrafficSpec("uniform", slot_ns=15.0, probability=0.8,
                     payload_words=4, n_slots=40, pattern_seed=7, seed=9),
    drain_ns=40000.0, max_ns=2e6,
    description="14-hop CBR streams under a near-saturating uniform BE "
                "storm: the isolation claim at scale.",
    tags=("gs-under-saturation", "uniform", "cbr")))

register(ScenarioSpec(
    name="gs-under-saturation-hotspot-8x8", cols=8, rows=8,
    gs=(GsConnectionSpec(src=(0, 4), dst=(7, 4), traffic="cbr",
                         flits=60, period_ns=140.0),),
    be=BeTrafficSpec("hotspot", slot_ns=15.0, probability=0.7,
                     payload_words=3, n_slots=40, hotspot=(4, 4),
                     fraction=0.6, pattern_seed=3, seed=5),
    drain_ns=40000.0, max_ns=2e6,
    description="A CBR stream routed straight through a saturated BE "
                "hotspot column.",
    tags=("gs-under-saturation", "hotspot", "cbr")))

# -- connection churn: the pools must breathe at runtime ---------------------

register(ScenarioSpec(
    name="gs-churn-8x8", cols=8, rows=8,
    churn=ChurnSpec(
        pairs=(((0, 0), (7, 7)), ((7, 0), (0, 7)),
               ((0, 7), (7, 0)), ((3, 3), (4, 4))),
        cycles=3, flits_per_open=8),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.15,
                     payload_words=2, n_slots=30, pattern_seed=7, seed=9),
    drain_ns=12000.0,
    description="Four GS connections opened, streamed and closed every "
                "cycle through real programming packets (with acks) "
                "while uniform BE load shares the mesh — the VC and "
                "interface pools must return to idle every cycle.",
    tags=("gs+be", "churn", "uniform")))

register(ScenarioSpec(
    name="gs-churn-saturated-16x16", cols=16, rows=16,
    churn=ChurnSpec(
        pairs=tuple(((x, y), (15, 12 + y))
                    for y in range(3) for x in range(4)),
        cycles=2, flits_per_open=6),
    be=BeTrafficSpec("uniform", slot_ns=40.0, probability=0.08,
                     payload_words=2, n_slots=12, pattern_seed=7, seed=9),
    drain_ns=40000.0,
    description="Twelve churned pairs whose XY routes all funnel down "
                "column 15 (links (15,2..11)->SOUTH carry all twelve): "
                "with 8 VCs per link the default xy strategy "
                "deterministically admits 8 and rejects 4 every cycle "
                "— runtime admission rejections under churn, at "
                "256-router scale over chained route headers.",
    tags=("gs+be", "churn", "uniform", "chained", "slow")))

# -- non-mesh fabrics: ring and routerless cells, scored against their ------
# -- own architectural bounds (docs/topologies.md) --------------------------

register(ScenarioSpec(
    name="ring-cbr-8x8", cols=8, rows=8, topology="ring",
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 0), traffic="cbr",
                         flits=80, period_ns=140.0),
        GsConnectionSpec(src=(0, 7), dst=(7, 7), traffic="cbr",
                         flits=80, period_ns=140.0)),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=3, n_slots=30, pattern_seed=7, seed=9),
    drain_ns=30000.0,
    description="Two 7-hop CBR streams on the bidirectional 64-node "
                "snake ring, scored against the ring-hop fair-share "
                "bound, under uniform BE riding the same arcs.",
    tags=("gs+be", "uniform", "cbr", "fabric", "ring")))

register(ScenarioSpec(
    name="ring-uni-cbr-4x4", cols=4, rows=4, topology="ring-uni",
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 0), traffic="cbr",
                         flits=100, period_ns=120.0),
        GsConnectionSpec(src=(3, 3), dst=(0, 0), traffic="cbr",
                         flits=100, period_ns=120.0)),
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=40, pattern_seed=7, seed=9),
    description="CBR streams on the unidirectional 16-node ring: every "
                "route winds clockwise, wrap-around pairs pay the full "
                "arc and the bound prices it.",
    tags=("gs+be", "uniform", "cbr", "fabric", "ring")))

register(ScenarioSpec(
    name="hring-cbr-8x8", cols=8, rows=8, topology="hring",
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 7), traffic="cbr",
                         flits=60, period_ns=200.0),
        GsConnectionSpec(src=(7, 1), dst=(1, 6), traffic="cbr",
                         flits=60, period_ns=200.0)),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=2, n_slots=30, pattern_seed=7, seed=9),
    drain_ns=30000.0,
    description="CBR streams climbing local row rings onto the global "
                "column ring and back down (Wu's hierarchical-ring "
                "router), with uniform BE sharing every ring.",
    tags=("gs+be", "uniform", "cbr", "fabric", "hring")))

register(ScenarioSpec(
    name="routerless-cbr-8x8", cols=8, rows=8, topology="routerless",
    gs=(GsConnectionSpec(src=(0, 3), dst=(7, 3), traffic="cbr",
                         flits=80, period_ns=140.0),
        GsConnectionSpec(src=(3, 0), dst=(3, 7), traffic="cbr",
                         flits=80, period_ns=140.0)),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=3, n_slots=30, pattern_seed=7, seed=9),
    drain_ns=30000.0,
    description="Row-loop and column-loop CBR streams on the "
                "routerless overlapping-loop fabric, scored against the "
                "Indrusiak-Burns per-loop real-time bound.",
    tags=("gs+be", "uniform", "cbr", "fabric", "routerless")))

register(ScenarioSpec(
    name="routerless-hotspot-4x4", cols=4, rows=4, topology="routerless",
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 3), traffic="cbr",
                         flits=80, period_ns=120.0),),
    be=BeTrafficSpec("hotspot", slot_ns=30.0, probability=0.2,
                     payload_words=2, n_slots=30, hotspot=(2, 2),
                     fraction=0.5, pattern_seed=3, seed=5),
    description="A corner-to-corner CBR stream riding the global snake "
                "loop while half of all BE traffic converges on tile "
                "(2,2) over the row/column loops.",
    tags=("gs+be", "hotspot", "cbr", "fabric", "routerless")))

# -- soak tier: >=1e8-event endurance runs (kernel speed round 2) -----------
#
# Full-duration soak cells stream ~10^8 scheduler events each with
# ``retain_packets=False`` (the spec default), so memory stays bounded
# and all statistics come from the streaming P^2 / WindowedRate
# estimators.  They are tagged ``slow`` (several minutes each at full
# duration) and run in CI only at smoke profile; drive the real thing
# with ``python -m repro scenario run soak-uniform-8x8``.  Calibration:
# the mesh cell generates ~1.4k events per BE slot, the ring cell ~0.9k,
# so the slot counts below land both comfortably past 10^8 events.

register(ScenarioSpec(
    name="soak-uniform-8x8", cols=8, rows=8,
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 7), traffic="cbr",
                         flits=14000, period_ns=140.0),
        GsConnectionSpec(src=(7, 0), dst=(0, 7), traffic="cbr",
                         flits=14000, period_ns=140.0)),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.1,
                     payload_words=3, n_slots=80000,
                     pattern_seed=7, seed=9),
    drain_ns=30000.0,
    description="Endurance run on the 8x8 mesh: two crossing CBR "
                "streams held open for the whole 2 ms injection window "
                "under 10% uniform BE load — ~10^8 events with bounded "
                "memory and streaming stats only.",
    tags=("gs+be", "uniform", "cbr", "soak", "slow")))

register(ScenarioSpec(
    name="soak-ring-8x8", cols=8, rows=8, topology="ring",
    gs=(GsConnectionSpec(src=(0, 0), dst=(7, 0), traffic="cbr",
                         flits=21000, period_ns=140.0),
        GsConnectionSpec(src=(0, 7), dst=(7, 7), traffic="cbr",
                         flits=21000, period_ns=140.0)),
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.1,
                     payload_words=3, n_slots=120000,
                     pattern_seed=7, seed=9),
    drain_ns=30000.0,
    description="Endurance run on the 64-node bidirectional ring: two "
                "row-hugging CBR streams held open for the 3 ms "
                "injection window under 10% uniform BE load — ~10^8 "
                "events exercising the fabric backend at soak scale.",
    tags=("gs+be", "uniform", "cbr", "fabric", "ring", "soak", "slow")))

# -- failure injection: errors must never pass silently ---------------------

register(ScenarioSpec(
    name="failure-malformed-config-2x2", cols=2, rows=2,
    be=BeTrafficSpec("uniform", slot_ns=25.0, probability=0.2,
                     payload_words=2, n_slots=20, pattern_seed=7, seed=9),
    failure=FailureSpec("malformed_config", at_ns=200.0,
                        src=(0, 0), dst=(1, 0)),
    description="A truncated config packet under light BE load must "
                "raise ConfigFormatError at the target router.",
    tags=("failure-injection", "uniform")))

register(ScenarioSpec(
    name="failure-malformed-config-4x4-under-load", cols=4, rows=4,
    gs=(GsConnectionSpec(src=(0, 0), dst=(3, 3), traffic="preload",
                         flits=40),),
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.3,
                     payload_words=3, n_slots=30, pattern_seed=7, seed=9),
    failure=FailureSpec("malformed_config", at_ns=400.0,
                        src=(0, 1), dst=(3, 2)),
    description="The malformed-config detection must fire even while GS "
                "and BE traffic load the mesh.",
    tags=("failure-injection", "uniform")))

register(ScenarioSpec(
    name="failure-orphan-flit-4x4", cols=4, rows=4,
    be=BeTrafficSpec("uniform", slot_ns=20.0, probability=0.2,
                     payload_words=2, n_slots=20, pattern_seed=7, seed=9),
    failure=FailureSpec("orphan_flit", at_ns=300.0, src=(1, 1)),
    description="A flit steered into an unprogrammed VC buffer must "
                "raise TableError, not vanish.",
    tags=("failure-injection", "uniform")))
