"""Bundled-data pipelines parameterised by a timing profile.

Long inter-router links are pipelined to keep link speed up (paper
Section 3): each stage adds forward latency but the chain's throughput is
set by the slowest single stage.  These helpers build such chains from a
:class:`~repro.circuits.timing.TimingProfile`.
"""

from __future__ import annotations

from ..sim.handshake import PipelineChain
from ..sim.kernel import Simulator
from .timing import TimingProfile

__all__ = ["build_link_pipeline", "link_stage_parameters",
           "stages_for_full_speed"]


def link_stage_parameters(profile: TimingProfile, length_mm: float,
                          stages: int) -> tuple:
    """(forward_latency_ns, cycle_time_ns) for each stage of a pipelined
    link of ``length_mm`` split into ``stages`` equal segments.

    Each segment carries wire delay plus one latch; its handshake cycle is
    the wire delay both ways plus the latch controller overhead, and must
    not exceed the router's link cycle or the pipeline — not the router —
    would set the port speed.
    """
    if stages < 1:
        raise ValueError("a link has at least one stage")
    if length_mm <= 0:
        raise ValueError("link length must be positive")
    d = profile.delays
    segment_mm = length_mm / stages
    wire = d.wire_per_mm * segment_mm
    forward = profile.ns(wire + d.latch_capture)
    cycle = profile.ns(2 * wire + d.latch_controller + d.rtz_overhead)
    return forward, cycle


def build_link_pipeline(sim: Simulator, profile: TimingProfile,
                        length_mm: float, stages: int,
                        name: str = "link") -> PipelineChain:
    """A pipelined link as a chain of bundled-data stages.

    The chain's total forward latency models the physical wire once plus
    one latch per stage boundary, so deeper pipelining adds latency while
    shortening the per-stage handshake cycle.
    """
    d = profile.delays
    total_forward = profile.ns(d.wire_per_mm * length_mm
                               + (stages + 1) * d.latch_capture)
    per_channel = total_forward / (stages + 1)
    _forward, cycle = link_stage_parameters(profile, length_mm, stages)
    return PipelineChain(sim, stages, per_channel, max(cycle, per_channel),
                         name=name)


def stages_for_full_speed(profile: TimingProfile, length_mm: float) -> int:
    """Minimum number of pipeline stages so the link does not throttle the
    router's port speed (stage cycle <= router link cycle)."""
    d = profile.delays
    stages = 1
    while True:
        wire = d.wire_per_mm * (length_mm / stages)
        cycle = 2 * wire + d.latch_controller + d.rtz_overhead
        if cycle <= d.link_cycle:
            return stages
        stages += 1
        if stages > 64:  # physically absurd; guard against bad inputs
            raise ValueError(
                f"link of {length_mm} mm cannot reach full speed")
