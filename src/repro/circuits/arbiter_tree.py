"""Mutex-tree arbiter circuit.

An N-way clockless arbiter is built as a balanced binary tree of two-input
mutex elements: a request ripples from a leaf to the root, winning each
mutex on the way; the root grant is exclusive.  Grant latency on an idle
tree is ``depth * mutex_delay``; release ripples back down.

The behavioural :class:`repro.core.link_arbiter.LinkArbiter` assumes an
arbitration latency of ``delays.arbitration`` τ; the unit tests race this
circuit model against that assumption (see DESIGN.md §2.2).
"""

from __future__ import annotations

import math
from typing import Any, List, Optional

from ..sim.kernel import Event, Simulator, SimulationError
from .primitives import Mutex

__all__ = ["MutexTreeArbiter", "tree_depth", "mutex_count"]


def tree_depth(n_inputs: int) -> int:
    """Depth of the balanced mutex tree arbitrating ``n_inputs`` requests."""
    if n_inputs < 1:
        raise ValueError("need at least one input")
    if n_inputs == 1:
        return 0
    return math.ceil(math.log2(n_inputs))


def mutex_count(n_inputs: int) -> int:
    """Number of 2-input mutex elements in an N-way tree (N-1)."""
    if n_inputs < 1:
        raise ValueError("need at least one input")
    return n_inputs - 1


class MutexTreeArbiter:
    """Event-level N-way arbiter assembled from :class:`Mutex` elements.

    ``request(i)`` returns an event that fires when input ``i`` holds every
    mutex on its root path; ``release(i)`` frees the path bottom-up.
    """

    def __init__(self, sim: Simulator, n_inputs: int, mutex_delay: float,
                 name: str = "arbtree"):
        if n_inputs < 2:
            raise ValueError("an arbiter needs at least two inputs")
        self.sim = sim
        self.n_inputs = n_inputs
        self.name = name
        self.depth = tree_depth(n_inputs)
        # Pad the leaf count to a power of two; unused leaves never request.
        self._leaves = 1 << self.depth
        # Level 0 is closest to the leaves; the last level is the root.
        self._levels: List[List[Mutex]] = []
        width = self._leaves // 2
        level = 0
        while width >= 1:
            self._levels.append([
                Mutex(sim, mutex_delay, name=f"{name}.L{level}.{i}")
                for i in range(width)
            ])
            width //= 2
            level += 1
        self._held: dict = {}
        self.grants = 0

    def _path(self, index: int) -> List[tuple]:
        """(mutex, side) pairs from leaf ``index`` up to the root."""
        path = []
        position = index
        for level in self._levels:
            mutex = level[position // 2]
            side = position % 2
            path.append((mutex, side))
            position //= 2
        return path

    def request(self, index: int) -> Event:
        if not 0 <= index < self.n_inputs:
            raise ValueError(f"input index {index} out of range")
        if index in self._held:
            raise SimulationError(
                f"{self.name}: input {index} already requesting/holding")
        self._held[index] = None  # reserves the slot while climbing
        done = Event(self.sim)
        self.sim.process(self._climb(index, done),
                         name=f"{self.name}.req{index}")
        return done

    def _climb(self, index: int, done: Event):
        path = self._path(index)
        for mutex, side in path:
            yield mutex.request(side)
        self._held[index] = path
        self.grants += 1
        done.succeed(index)

    def release(self, index: int) -> None:
        path = self._held.pop(index, None)
        if not path:
            raise SimulationError(
                f"{self.name}: release of non-granted input {index}")
        for mutex, side in path:
            mutex.release(side)

    @property
    def holder(self) -> Optional[int]:
        """Index currently holding the root, if any."""
        root = self._levels[-1][0]
        if root.owner is None:
            return None
        for index, path in self._held.items():
            if path and path[-1][0] is root:
                return index
        return None
