"""Share-based VC control primitives (paper Figure 6).

One wire per VC implements non-blocking access to a shared media: the
:class:`Sharebox` admits a single flit and locks; the flit crosses the
media into the :class:`Unsharebox` latch at the far side; when the flit
leaves the unsharebox the unlock wire toggles, unlocking the sharebox.  As
long as the media itself is deadlock-free, no flit ever stalls inside it —
the key property that makes the MANGO switching module non-blocking.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..sim.kernel import Event, Simulator, SimulationError
from ..sim.resources import Gate, Store

__all__ = ["Sharebox", "Unsharebox", "ShareProtocolError"]


class ShareProtocolError(SimulationError):
    """Raised when the lock/unlock protocol is violated (e.g. an unlock
    arriving while the sharebox is already unlocked)."""


class Sharebox:
    """Admission gate for one VC onto the shared media.

    The box starts unlocked.  ``admit`` locks it; a later ``unlock``
    (triggered by the downstream unsharebox) re-opens it.  ``wait_unlocked``
    lets the VC sender block until admission is possible.
    """

    def __init__(self, sim: Simulator, name: str = "sharebox"):
        self.sim = sim
        self.name = name
        self._gate = Gate(sim, is_open=True, name=f"{name}.gate")
        self.admitted = 0
        self.unlocks = 0

    @property
    def locked(self) -> bool:
        return not self._gate.is_open

    def wait_unlocked(self) -> Event:
        return self._gate.wait_open()

    def admit(self) -> None:
        """Lock the box as a flit enters the media."""
        if self.locked:
            raise ShareProtocolError(
                f"{self.name}: admit while locked (two flits on the media)")
        self.admitted += 1
        self._gate.close()

    def unlock(self) -> None:
        """Unlock toggle arriving from the downstream unsharebox."""
        if not self.locked:
            raise ShareProtocolError(
                f"{self.name}: unlock while already unlocked")
        self.unlocks += 1
        self._gate.open()


class Unsharebox:
    """Latch at the far side of the shared media.

    Capacity one flit.  ``leave`` removes the flit and fires the unlock
    callback (the VC control module routes the toggle to the right
    upstream sharebox).
    """

    def __init__(self, sim: Simulator, name: str = "unsharebox",
                 on_unlock: Optional[Callable[[], None]] = None):
        self.sim = sim
        self.name = name
        self.latch = Store(sim, capacity=1, name=f"{name}.latch")
        self._on_unlock: List[Callable[[], None]] = []
        if on_unlock is not None:
            self._on_unlock.append(on_unlock)
        self.accepted = 0
        self.departed = 0

    def on_unlock(self, callback: Callable[[], None]) -> None:
        self._on_unlock.append(callback)

    @property
    def occupied(self) -> bool:
        return not self.latch.is_empty

    def accept(self, flit: Any) -> None:
        """Capture an arriving flit; the protocol guarantees space."""
        if not self.latch.try_put(flit):
            raise ShareProtocolError(
                f"{self.name}: flit arrived at an occupied unsharebox "
                "(share-based protocol violated)")
        self.accepted += 1

    def take(self) -> Event:
        """Event yielding the flit; completing it *is* the departure, so
        the unlock toggle fires."""
        event = self.latch.get()
        if event.processed:
            # The latch had the flit and get() completed inline: the
            # departure is now, before the taker resumes (the same order
            # the callback list used to guarantee).
            self._departed(event)
        else:
            event.add_callback(self._departed)
        return event

    def _departed(self, _event: Event) -> None:
        self.departed += 1
        for callback in self._on_unlock:
            callback()
