"""Delay-insensitive 1-of-4 link encoding (paper Section 6, future work).

The implemented MANGO router uses 4-phase *bundled data* between routers:
cheap (one wire per bit + request/ack) but timing-dependent — the matched
delay of the request wire must exceed the worst-case data-wire skew, which
is exactly what gets hard to guarantee on long inter-router wires.  The
paper advocates delay-insensitive signalling between routers, e.g. 1-of-4
encoding [Bainbridge & Furber], "in order to make assembling a NoC-based
SoC a modular and timing safe exercise, and in order to save power.  This
will be realized in future MANGO versions."

This module implements that future version's link layer:

* codec: 2 data bits -> one 1-of-4 group (exactly one of four wires fires
  per symbol), with codeword validation;
* wire/transition accounting: 1-of-4 doubles the wire count but fires one
  transition per two bits (RTZ: two edges), vs a bundled-data link firing
  ~0.5·bits transitions plus the request/ack pair — the power trade the
  paper refers to;
* a skew-robustness model: a DI link tolerates arbitrary per-wire skew
  (completion detection waits for the group), while a bundled-data link
  fails once data skew exceeds its matched-delay margin.

`benchmarks/bench_link_encoding.py` is the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = [
    "EncodingError",
    "encode_one_of_four",
    "decode_one_of_four",
    "LinkEncodingModel",
    "bundled_data_model",
    "one_of_four_model",
]


class EncodingError(ValueError):
    """Raised for invalid codewords (not exactly one wire per group)."""


def encode_one_of_four(word: int, bits: int = 34) -> Tuple[int, ...]:
    """Encode ``bits`` of ``word`` into 1-of-4 groups.

    Returns one one-hot nibble (as an int with exactly one bit set) per
    2-bit group, least-significant group first.  ``bits`` must be even.
    """
    if bits % 2:
        raise EncodingError("1-of-4 encodes two bits per group")
    if word < 0 or word >= (1 << bits):
        raise EncodingError(f"word does not fit in {bits} bits")
    groups = []
    for index in range(bits // 2):
        pair = (word >> (2 * index)) & 0x3
        groups.append(1 << pair)
    return tuple(groups)


def decode_one_of_four(groups: Sequence[int], bits: int = 34) -> int:
    """Inverse of :func:`encode_one_of_four`; validates the code."""
    if bits % 2 or len(groups) != bits // 2:
        raise EncodingError(
            f"expected {bits // 2} groups, got {len(groups)}")
    word = 0
    for index, group in enumerate(groups):
        if group not in (1, 2, 4, 8):
            raise EncodingError(
                f"group {index} is {group:#x}: not a 1-of-4 codeword")
        pair = group.bit_length() - 1
        word |= pair << (2 * index)
    return word


@dataclass(frozen=True)
class LinkEncodingModel:
    """Wire/transition/robustness accounting for one link flit."""

    name: str
    data_bits: int
    wires: int                   # forward data + control wires
    transitions_per_flit: float  # average wire transitions (RTZ included)
    handshake_wires: int         # ack (+ request for bundled data)
    delay_insensitive: bool
    matched_delay_margin_tau: float  # skew tolerance; inf when DI

    @property
    def total_wires(self) -> int:
        return self.wires + self.handshake_wires

    def energy_per_flit_pj(self, e_transition_pj: float = 0.035,
                           length_mm: float = 1.5) -> float:
        """Wire energy: transitions x per-transition-per-mm energy."""
        return self.transitions_per_flit * e_transition_pj * length_mm

    def survives_skew(self, skew_tau: float) -> bool:
        """Whether a flit is received correctly under per-wire skew of
        ``skew_tau`` gate delays."""
        if self.delay_insensitive:
            return True
        return skew_tau <= self.matched_delay_margin_tau


def bundled_data_model(data_bits: int = 34, steering_bits: int = 5,
                       activity: float = 0.5,
                       matched_delay_margin_tau: float = 2.0
                       ) -> LinkEncodingModel:
    """The implemented MANGO link: single-rail data + req/ack.

    ``activity`` is the average fraction of data wires toggling per flit;
    req and ack each make two transitions per 4-phase cycle.
    """
    bits = data_bits + steering_bits
    return LinkEncodingModel(
        name="bundled-data (4-phase)",
        data_bits=bits,
        wires=bits,
        transitions_per_flit=bits * activity + 4.0,  # data + req/ack RTZ
        handshake_wires=2,
        delay_insensitive=False,
        matched_delay_margin_tau=matched_delay_margin_tau,
    )


def one_of_four_model(data_bits: int = 34, steering_bits: int = 5
                      ) -> LinkEncodingModel:
    """The future MANGO link: 1-of-4 DI encoding + one ack wire.

    Every 2-bit group fires exactly one wire (two transitions with
    return-to-zero) regardless of data — data-independent power, double
    the wires, no timing assumptions.
    """
    bits = data_bits + steering_bits
    if bits % 2:
        bits += 1  # pad to a group boundary
    groups = bits // 2
    return LinkEncodingModel(
        name="1-of-4 (delay-insensitive)",
        data_bits=bits,
        wires=groups * 4,
        transitions_per_flit=groups * 2.0 + 2.0,  # one wire RTZ/group + ack
        handshake_wires=1,
        delay_insensitive=True,
        matched_delay_margin_tau=float("inf"),
    )
