"""Event-level models of the clockless circuit primitives.

These are the building blocks the paper's control circuits are made of:
Muller C-elements (handshake joins), mutex elements (metastability-filtered
two-way arbitration) and transparent latches with 4-phase controllers.
They ground the behavioural router model: the mutex tree built from
:class:`Mutex` in :mod:`repro.circuits.arbiter_tree` validates the
grant-latency assumptions used by the fast behavioural link arbiter.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, List, Optional

from ..sim.kernel import Event, Simulator, SimulationError

__all__ = ["CElement", "Mutex", "LatchStage"]


class CElement:
    """Muller C-element: output follows inputs once they all agree.

    The output transitions ``delay`` ns after the last input reaches
    consensus.  ``on_change`` callbacks receive the new output value.
    """

    def __init__(self, sim: Simulator, n_inputs: int, delay: float,
                 name: str = "c"):
        if n_inputs < 1:
            raise ValueError("C-element needs at least one input")
        self.sim = sim
        self.delay = delay
        self.name = name
        self.inputs: List[bool] = [False] * n_inputs
        self.output = False
        self.transitions = 0
        self._listeners: List[Callable[[bool], None]] = []
        self._pending: Optional[bool] = None

    def on_change(self, callback: Callable[[bool], None]) -> None:
        self._listeners.append(callback)

    def set_input(self, index: int, value: bool) -> None:
        self.inputs[index] = bool(value)
        self._evaluate()

    def _evaluate(self) -> None:
        consensus: Optional[bool] = None
        if all(self.inputs):
            consensus = True
        elif not any(self.inputs):
            consensus = False
        if consensus is None or consensus == self.output:
            return
        if self._pending == consensus:
            return
        self._pending = consensus
        fire = self.sim.event()
        fire.succeed(consensus, delay=self.delay)
        fire.add_callback(self._commit)

    def _commit(self, event: Event) -> None:
        value = event.value
        self._pending = None
        # Inputs may have diverged again during the delay; re-check.
        if value and not all(self.inputs):
            return
        if not value and any(self.inputs):
            return
        if value == self.output:
            return
        self.output = value
        self.transitions += 1
        for listener in self._listeners:
            listener(value)


class Mutex:
    """Two-input mutual-exclusion element.

    Grants are mutually exclusive and FIFO-fair per side; the resolution
    delay models the metastability filter of the standard-cell MUTEX.
    """

    def __init__(self, sim: Simulator, delay: float, name: str = "mutex"):
        self.sim = sim
        self.delay = delay
        self.name = name
        self._owner: Optional[int] = None
        self._waiting: deque = deque()  # (side, event)
        self.grants = 0

    @property
    def owner(self) -> Optional[int]:
        return self._owner

    def request(self, side: int) -> Event:
        if side not in (0, 1):
            raise ValueError("mutex side must be 0 or 1")
        event = Event(self.sim)
        if self._owner is None and not self._waiting:
            self._grant(side, event)
        else:
            self._waiting.append((side, event))
        return event

    def release(self, side: int) -> None:
        if self._owner != side:
            raise SimulationError(
                f"mutex {self.name!r}: release by non-owner side {side}")
        self._owner = None
        if self._waiting:
            next_side, event = self._waiting.popleft()
            self._grant(next_side, event)

    def _grant(self, side: int, event: Event) -> None:
        self._owner = side
        self.grants += 1
        event.succeed(side, delay=self.delay)


class LatchStage:
    """Transparent latch + 4-phase controller as one pipeline element.

    ``push`` completes a full 4-phase cycle (capture after
    ``forward_delay``, handshake completes after ``cycle_time``); data is
    then available via ``pop``.  Capacity is one token, as in the paper's
    unsharebox and single-flit output buffers.
    """

    def __init__(self, sim: Simulator, forward_delay: float,
                 cycle_time: float, name: str = "latch"):
        if cycle_time < forward_delay:
            raise ValueError("cycle_time must cover the forward delay")
        self.sim = sim
        self.forward_delay = forward_delay
        self.cycle_time = cycle_time
        self.name = name
        self._data: Any = None
        self._full = False
        self._space: deque = deque()   # events waiting for space
        self._tokens: deque = deque()  # events waiting for data
        self._last_cycle_end = -float("inf")
        self.captured = 0

    @property
    def full(self) -> bool:
        return self._full

    def push(self, data: Any):
        """Sub-generator: capture ``data`` once the latch has space."""
        if self._full or self._space:
            gate = Event(self.sim)
            self._space.append(gate)
            yield gate
        spacing = self._last_cycle_end + self.cycle_time - self.sim.now
        wait = max(self.forward_delay, spacing)
        yield self.sim.timeout(wait)
        self._full = True
        self._data = data
        self._last_cycle_end = self.sim.now
        self.captured += 1
        while self._tokens:
            self._tokens.popleft().succeed(None)

    def pop(self):
        """Sub-generator: wait for data, remove and return it."""
        while not self._full:
            gate = Event(self.sim)
            self._tokens.append(gate)
            yield gate
        data = self._data
        self._data = None
        self._full = False
        if self._space:
            self._space.popleft().succeed(None)
        return data
