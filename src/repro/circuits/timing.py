"""Timing model for the 4-phase bundled-data MANGO router.

All structural delays are expressed in a gate-delay unit τ; a corner
(:class:`TimingProfile`) fixes τ in nanoseconds.  The structural counts are
identical across corners — exactly how corner scaling behaves for a
standard-cell design — so the worst-case/typical speed ratio equals the τ
ratio.

Calibration (documented in DESIGN.md §4): the paper reports a port speed of
515 MHz at the worst-case corner (1.08 V / 125 °C) and 795 MHz typical for
its 0.12 µm standard-cell implementation.  The shared-media admission stage
(mutex → grant → merge → steering append → request wire → latch controller
→ ack return → return-to-zero) sums to 18.5 τ, so τ_wc = 0.105 ns gives
1.9425 ns (514.8 MHz) and τ_typ = 0.068 ns gives 1.258 ns (794.9 MHz).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = [
    "StructuralDelays",
    "TimingProfile",
    "WORST_CASE",
    "TYPICAL",
    "DEFAULT_LINK_MM",
]

# Default inter-router link length in millimetres.  Links are "much longer"
# than the router-internal wiring (Section 6), which is why the per-VC
# unlock round trip exceeds the link cycle and a single VC cannot saturate
# a link.  1.5 mm is the longest unpipelined link whose own handshake cycle
# (2 x wire + latch controller + RTZ = 17.5 τ) stays below the router's
# 18.5 τ link cycle; longer links need pipeline stages to sustain the port
# speed (see `circuits.pipeline.stages_for_full_speed`).
DEFAULT_LINK_MM = 1.5


@dataclass(frozen=True)
class StructuralDelays:
    """Delay counts in gate-delay units τ for each circuit element.

    The counts describe the control-path structure of the router; they are
    corner-independent.
    """

    # Link-access (shared media admission) stage — sets the port speed.
    mutex: float = 2.0               # mutex element resolution
    grant_logic: float = 2.5         # grant generation after mutex
    merge_mux: float = 1.5           # merge of granted VC onto the link
    steering_append: float = 1.0     # appending the 5 steering bits
    request_wire: float = 1.0        # local request wire
    latch_controller: float = 4.5    # 4-phase latch controller (set phase)
    ack_return: float = 2.0          # acknowledge back to the arbiter
    rtz_overhead: float = 4.0        # return-to-zero of req/ack

    # Forward data path through the next router (constant, non-blocking).
    split_stage: float = 1.5         # split demux, strips 3 steering bits
    switch_stage: float = 1.5        # 4x4 switch, strips 2 steering bits
    latch_capture: float = 1.0       # capture into the unsharebox latch

    # VC-control (unlock) path.
    unshare_transfer: float = 1.0    # unsharebox -> output buffer transfer
    vc_control_mux: float = 1.5      # (P-1)*V-input unlock mux
    sharebox_unlock: float = 1.5     # sharebox unlock logic

    # Wires.
    wire_per_mm: float = 3.0         # repeated wire delay per millimetre

    # BE router internals.
    be_route_decode: float = 2.5     # header MSB decode + rotate
    be_arbitration: float = 4.0      # round-robin input arbitration
    be_buffer_stage: float = 2.5     # BE input buffer stage cycle overhead
    credit_return: float = 2.0       # credit wire signalling overhead

    @property
    def link_cycle(self) -> float:
        """τ per flit on the shared media — reciprocal is the port speed."""
        return (self.mutex + self.grant_logic + self.merge_mux
                + self.steering_append + self.request_wire
                + self.latch_controller + self.ack_return
                + self.rtz_overhead)

    @property
    def arbitration(self) -> float:
        """τ from request to grant on an idle link."""
        return self.mutex + self.grant_logic

    def forward_path(self, link_mm: float) -> float:
        """τ from link grant to capture in the next router's unsharebox."""
        return (self.merge_mux + self.steering_append
                + self.wire_per_mm * link_mm + self.split_stage
                + self.switch_stage + self.latch_capture)

    def unlock_path(self, link_mm: float) -> float:
        """τ from unsharebox departure to the upstream sharebox unlocking."""
        return (self.vc_control_mux + self.wire_per_mm * link_mm
                + self.sharebox_unlock)

    def vc_round_trip(self, link_mm: float) -> float:
        """τ per flit for a single VC using the link alone.

        Grant → forward path → unsharebox-to-buffer transfer → unlock back
        → re-arbitration.  Exceeds :attr:`link_cycle`, which is why one VC
        cannot use the full link bandwidth (paper Section 4.3).
        """
        return (self.forward_path(link_mm) + self.unshare_transfer
                + self.unlock_path(link_mm) + self.arbitration)


@dataclass(frozen=True)
class TimingProfile:
    """A process corner: fixes the gate-delay unit τ in nanoseconds."""

    name: str
    voltage_v: float
    temperature_c: float
    gate_delay_ns: float
    delays: StructuralDelays = StructuralDelays()

    def ns(self, tau: float) -> float:
        """Convert a τ count to nanoseconds at this corner."""
        return tau * self.gate_delay_ns

    # -- headline derived values -------------------------------------------

    @property
    def link_cycle_ns(self) -> float:
        return self.ns(self.delays.link_cycle)

    @property
    def port_speed_mhz(self) -> float:
        """Flit rate per port in MHz (paper: 515 WC / 795 typical)."""
        return 1e3 / self.link_cycle_ns

    def forward_latency_ns(self, link_mm: float = DEFAULT_LINK_MM) -> float:
        return self.ns(self.delays.forward_path(link_mm))

    def unlock_latency_ns(self, link_mm: float = DEFAULT_LINK_MM) -> float:
        return self.ns(self.delays.unlock_path(link_mm))

    def arbitration_ns(self) -> float:
        return self.ns(self.delays.arbitration)

    def unshare_transfer_ns(self) -> float:
        return self.ns(self.delays.unshare_transfer)

    def vc_round_trip_ns(self, link_mm: float = DEFAULT_LINK_MM) -> float:
        return self.ns(self.delays.vc_round_trip(link_mm))

    def single_vc_utilization(self, link_mm: float = DEFAULT_LINK_MM
                              ) -> float:
        """Fraction of link bandwidth one VC can sustain.

        Below 1 for realistic link lengths (the unlock round trip exceeds
        the link cycle); capped at 1 for very short links where the link
        cycle itself is the binding constraint.
        """
        return min(1.0, self.delays.link_cycle
                   / self.delays.vc_round_trip(link_mm))

    def fair_share_feasible(self, vcs: int,
                            link_mm: float = DEFAULT_LINK_MM) -> bool:
        """True when a VC's 1/V share is sustainable over this link.

        The fair-share guarantee holds when the per-VC round trip fits in V
        link cycles (paper Section 4.4: single-flit buffers "are enough to
        ensure the fair-share scheme to function over a sequence of links").
        """
        return self.delays.vc_round_trip(link_mm) <= vcs * self.delays.link_cycle

    def scaled(self, factor: float, name: str = "") -> "TimingProfile":
        """A derived corner with τ scaled by ``factor``."""
        return replace(self, name=name or f"{self.name}*{factor}",
                       gate_delay_ns=self.gate_delay_ns * factor)


#: Worst-case corner from the paper: 1.08 V / 125 °C → 515 MHz per port.
WORST_CASE = TimingProfile(
    name="worst-case", voltage_v=1.08, temperature_c=125.0,
    gate_delay_ns=0.105)

#: Typical corner from the paper: nominal V/T → 795 MHz per port.
TYPICAL = TimingProfile(
    name="typical", voltage_v=1.20, temperature_c=25.0,
    gate_delay_ns=0.068)
