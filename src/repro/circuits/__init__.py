"""Clockless circuit primitives and timing models."""

from .timing import (
    DEFAULT_LINK_MM,
    StructuralDelays,
    TimingProfile,
    TYPICAL,
    WORST_CASE,
)
from .primitives import CElement, LatchStage, Mutex
from .sharebox import Sharebox, ShareProtocolError, Unsharebox
from .arbiter_tree import MutexTreeArbiter, mutex_count, tree_depth
from .pipeline import (
    build_link_pipeline,
    link_stage_parameters,
    stages_for_full_speed,
)

__all__ = [
    "CElement",
    "DEFAULT_LINK_MM",
    "LatchStage",
    "Mutex",
    "MutexTreeArbiter",
    "Sharebox",
    "ShareProtocolError",
    "StructuralDelays",
    "TimingProfile",
    "TYPICAL",
    "Unsharebox",
    "WORST_CASE",
    "build_link_pipeline",
    "link_stage_parameters",
    "mutex_count",
    "stages_for_full_speed",
    "tree_depth",
]
