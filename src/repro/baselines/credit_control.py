"""Credit-based VC control — the scheme share-based control is cheaper than.

Section 4.3: share-based VC control "is much cheaper, both area and power
wise, than the commonly used credit-based VC control scheme", while
credit-based control improves average-case performance (it lets one VC
keep several flits in flight) — which is why the BE channels use credits.
Both schemes are implemented on the real router datapath
(``RouterConfig.flow_control``); this module adds the cost accounting for
the comparison bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.area import CellLibrary
from ..core.config import RouterConfig

__all__ = ["credit_router_config", "FlowControlCost",
           "flow_control_cost_comparison"]


def credit_router_config(base: RouterConfig = RouterConfig(),
                         window: int = 4) -> RouterConfig:
    """GS VCs flow-controlled by credits instead of shareboxes — the
    "commonly used" alternative paper Section 4.3 prices share-based
    control against."""
    from dataclasses import replace
    return replace(base, flow_control="credit", credit_window=window)


@dataclass(frozen=True)
class FlowControlCost:
    """Per-router cost of one VC flow-control scheme."""

    scheme: str
    reverse_wires_per_link: int
    area_um2: float
    extra_buffer_bits: int

    def rows(self):
        return [
            ("scheme", self.scheme),
            ("reverse wires per link", self.reverse_wires_per_link),
            ("control area (um2)", round(self.area_um2, 1)),
            ("extra buffer bits", self.extra_buffer_bits),
        ]


def flow_control_cost_comparison(config: RouterConfig = RouterConfig(),
                                 library: CellLibrary = CellLibrary(),
                                 window: int = 4
                                 ) -> Dict[str, FlowControlCost]:
    """Cost of share-based vs credit-based control for the same router.

    Share-based: one unlock wire per VC, a sharebox (a latch and a couple
    of gates) per VC, and the unlock mux of the VC control module.

    Credit-based: the reverse path must carry credit *values* or one
    pulse wire per VC plus an up/down counter per VC at the sender, a
    comparator, and ``window``-deep downstream buffering instead of the
    single-flit unsharebox.
    """
    vcs = config.vcs_per_port
    body = config.flit_width + 2
    slots_per_router = 4 * vcs + config.local_gs_interfaces

    share_area = slots_per_router * (
        library.latch + 2 * library.nand2      # sharebox
        + library.mux_tree(4 * vcs)            # unlock mux instance
    )
    share = FlowControlCost(
        scheme="share",
        reverse_wires_per_link=vcs,
        area_um2=share_area,
        extra_buffer_bits=0,
    )

    counter_bits = max(1, window.bit_length())
    credit_area = slots_per_router * (
        counter_bits * library.dff             # credit counter
        + counter_bits * 2 * library.nand2     # inc/dec + zero compare
        + library.mux_tree(4 * vcs)            # return-path routing
    )
    extra_bits = slots_per_router * body * (window - 1)
    credit_area += extra_bits * library.latch  # deeper landing buffers
    credit = FlowControlCost(
        scheme="credit",
        reverse_wires_per_link=vcs,            # pulse wire per VC
        area_um2=credit_area,
        extra_buffer_bits=extra_bits,
    )
    return {"share": share, "credit": credit}
