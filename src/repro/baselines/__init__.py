"""Comparison systems the paper argues against (Sections 4.1, 4.3, 6):
the generic arbitrated-switch VC router of Figure 3, ÆTHEREAL-style TDM
slot tables, Felicijan & Furber's prioritized VCs [9], and credit-based
flow control.

These are the *single-router / allocation-level* models; the
:mod:`repro.backends` package lifts them into full scenario-runnable
mesh networks (``--backend generic-vc|tdm|priority``), so every cell of
the scenario matrix can replay on them — see ``docs/backends.md``."""

from .credit_control import (
    FlowControlCost,
    credit_router_config,
    flow_control_cost_comparison,
)
from .generic_vc_router import GenericFlit, GenericVcRouter
from .priority_router import PRIORITY_BASELINE_NOTES, priority_router_config
from .tdm_router import (
    AETHEREAL_PUBLISHED,
    TdmConnection,
    TdmPathAllocator,
    TdmSlotTable,
    tdm_latency_bound_ns,
)

__all__ = [
    "AETHEREAL_PUBLISHED",
    "FlowControlCost",
    "GenericFlit",
    "GenericVcRouter",
    "PRIORITY_BASELINE_NOTES",
    "TdmConnection",
    "TdmPathAllocator",
    "TdmSlotTable",
    "credit_router_config",
    "flow_control_cost_comparison",
    "priority_router_config",
    "tdm_latency_bound_ns",
]
