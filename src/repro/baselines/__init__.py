"""Comparison systems: generic VC router, TDM (ÆTHEREAL-style), priority
VCs, credit-based flow control."""

from .credit_control import (
    FlowControlCost,
    credit_router_config,
    flow_control_cost_comparison,
)
from .generic_vc_router import GenericFlit, GenericVcRouter
from .priority_router import PRIORITY_BASELINE_NOTES, priority_router_config
from .tdm_router import (
    AETHEREAL_PUBLISHED,
    TdmConnection,
    TdmPathAllocator,
    TdmSlotTable,
    tdm_latency_bound_ns,
)

__all__ = [
    "AETHEREAL_PUBLISHED",
    "FlowControlCost",
    "GenericFlit",
    "GenericVcRouter",
    "PRIORITY_BASELINE_NOTES",
    "TdmConnection",
    "TdmPathAllocator",
    "TdmSlotTable",
    "credit_router_config",
    "flow_control_cost_comparison",
    "priority_router_config",
    "tdm_latency_bound_ns",
]
