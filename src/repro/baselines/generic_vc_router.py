"""The generic output-buffered VC router of paper Figure 3.

A P x P switch is followed by a split to per-VC output buffers.  Unlike
MANGO's switching module, the switch itself is *arbitrated*: several input
ports may contend for the same output port, and flits queue at the inputs
in shared FIFOs.  Two coupling effects make service guarantees impossible
(the point of Section 4.1):

* **switch congestion** — a flow's flits wait for unrelated flows'
  transfers through the same output port;
* **head-of-line blocking** — a flit whose output is busy blocks the flits
  behind it in the same input FIFO even when their outputs are free.

`benchmarks/bench_gs_isolation.py` runs the same foreground/background
scenario through this router and through MANGO: the generic router's
foreground latency grows without bound as background load rises, MANGO's
stays flat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..sim.kernel import Simulator
from ..sim.resources import Resource, Store
from ..traffic.stats import RunningStats

__all__ = ["GenericFlit", "GenericVcRouter"]


@dataclass
class GenericFlit:
    """A flit in the generic router of paper Figure 3: destination
    output port plus a flow tag for per-flow latency accounting.

    The ``generic-vc`` scenario backend subclasses this with mesh
    routing fields (:class:`repro.backends.generic_vc.MeshRoutedFlit`);
    the router itself reads nothing beyond what is declared here."""

    output: int
    flow: str
    inject_time: float = -1.0
    payload: int = 0


class GenericVcRouter:
    """Event-level model of the Figure 3 router.

    ``inject(input_port, flit)`` queues a flit; delivered flits are passed
    to the sink callback with their delivery time.  Transfer through the
    switch and across the output link each take one ``cycle_ns`` per unit
    of the flit's ``service_flits`` weight (default 1): a multi-flit
    packet travelling as one transfer unit — how a VC-less wormhole
    router actually occupies its switch — holds the arbitrated output
    for its whole serialized length, which is what lets the
    ``generic-vc`` scenario backend reproduce the unbounded head-of-line
    compounding of Section 4.1 at packet granularity.
    """

    def __init__(self, sim: Simulator, ports: int, cycle_ns: float,
                 input_queue_depth: int = 16, output_buffer_depth: int = 2,
                 name: str = "generic"):
        if ports < 2:
            raise ValueError("a router needs at least two ports")
        if cycle_ns <= 0:
            raise ValueError("cycle time must be positive")
        self.sim = sim
        self.ports = ports
        self.cycle_ns = cycle_ns
        self.name = name
        self.input_queues: List[Store] = [
            Store(sim, capacity=input_queue_depth, name=f"{name}.in{i}")
            for i in range(ports)
        ]
        # One transfer at a time through each switch output: this is the
        # arbitration that MANGO's non-blocking switch does not have.
        self.switch_ports: List[Resource] = [
            Resource(sim, 1, name=f"{name}.sw{o}") for o in range(ports)
        ]
        self.output_buffers: List[Store] = [
            Store(sim, capacity=output_buffer_depth, name=f"{name}.out{o}")
            for o in range(ports)
        ]
        self._sinks: Dict[int, Callable[[GenericFlit, float], None]] = {}
        self.flow_latency: Dict[str, RunningStats] = {}
        self.delivered = 0
        for i in range(ports):
            sim.process(self._input_process(i), name=f"{name}.inproc{i}")
        for o in range(ports):
            sim.process(self._output_process(o), name=f"{name}.outproc{o}")

    def bind_sink(self, output: int,
                  callback: Callable[[GenericFlit, float], None]) -> None:
        """Deliver flits leaving ``output`` to ``callback(flit, now)``
        — a measurement probe, or (in the ``generic-vc`` backend) the
        forwarding hook into the next router of the mesh."""
        self._sinks[output] = callback

    def inject(self, input_port: int, flit: GenericFlit):
        """Sub-generator: blocks while the input FIFO is full — the
        shared FIFO whose head-of-line coupling Section 4.1 calls out."""
        if flit.inject_time < 0:
            flit.inject_time = self.sim.now
        yield self.input_queues[input_port].put(flit)

    def try_inject(self, input_port: int, flit: GenericFlit) -> bool:
        """Non-blocking :meth:`inject`; False when the FIFO is full."""
        if flit.inject_time < 0:
            flit.inject_time = self.sim.now
        return self.input_queues[input_port].try_put(flit)

    def _service_ns(self, flit: GenericFlit) -> float:
        """Switch/link occupancy of one transfer unit: ``cycle_ns`` per
        flit it serializes (``service_flits`` attribute, default 1)."""
        return self.cycle_ns * getattr(flit, "service_flits", 1)

    def _input_process(self, input_port: int):
        queue = self.input_queues[input_port]
        while True:
            flit = yield queue.get()
            # Head-of-line: everything behind this flit waits here.
            switch = self.switch_ports[flit.output]
            yield switch.request()
            yield self.sim.timeout(self._service_ns(flit))
            yield self.output_buffers[flit.output].put(flit)
            switch.release()

    def _output_process(self, output: int):
        buffer = self.output_buffers[output]
        while True:
            flit = yield buffer.get()
            yield self.sim.timeout(self._service_ns(flit))
            self.delivered += 1
            stats = self.flow_latency.setdefault(flit.flow, RunningStats())
            stats.add(self.sim.now - flit.inject_time)
            sink = self._sinks.get(output)
            if sink is not None:
                sink(flit, self.sim.now)
