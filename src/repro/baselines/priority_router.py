"""Prioritized-VC router baseline (Felicijan & Furber [9]).

Reference [9] is a clockless router that provides *differentiated*
services by statically prioritizing VCs: high-priority connections see
better latency, but there is no admission control, so "no hard guarantees
are provided" — low-priority VCs starve once higher priorities saturate
the link.  MANGO's pluggable arbiter makes this a one-line configuration;
`benchmarks/bench_alg_latency.py` contrasts it with fair-share and ALG.
"""

from __future__ import annotations

from ..core.config import RouterConfig

__all__ = ["priority_router_config", "PRIORITY_BASELINE_NOTES"]

PRIORITY_BASELINE_NOTES = (
    "static VC priority, no admission control: differentiated latency, "
    "no hard bandwidth floor for low priorities")


def priority_router_config(base: RouterConfig = RouterConfig()
                           ) -> RouterConfig:
    """The [9]-style configuration: same router, strict-priority arbiter."""
    return base.with_arbiter("static_priority")
