"""ÆTHEREAL-style TDM router model (the Section 6 comparison point).

ÆTHEREAL [8][16] provides per-connection bandwidth guarantees by time
division multiplexing: a global slot table of S slots per revolution; a
connection reserves slots, and a slot reserved at hop k must align with
slot (k+1) mod S at the next hop.  Characteristics the paper contrasts
MANGO against:

* clocked operation — 500 MHz ports, 0.175 mm² (0.13 µm, custom FIFOs);
* up to 256 connections, but **not independently buffered** — shared
  buffering means end-to-end flow control (credits) is needed;
* routing information is not stored in the routers, so GS connections
  carry **packet headers** (bandwidth overhead MANGO avoids);
* bandwidth is allocated in quanta of 1/S of the link, and worst-case
  access latency is a full table revolution.

TDM is impossible in a clockless NoC ("no notion of time"), which is why
MANGO needs the share-based scheme at all — this model exists so the
comparison bench can put numbers side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["AETHEREAL_PUBLISHED", "TdmSlotTable", "TdmPathAllocator",
           "TdmConnection", "tdm_latency_bound_ns"]

#: Published figures quoted in paper Section 6 for the 0.13 µm ÆTHEREAL.
AETHEREAL_PUBLISHED = {
    "port_speed_mhz": 500.0,
    "area_mm2": 0.175,
    "max_connections": 256,
    "independently_buffered": False,
    "needs_end_to_end_flow_control": True,
    "stores_routes_in_router": False,
}


@dataclass
class TdmConnection:
    """A TDM circuit: reserved slot indices at the first hop."""

    connection_id: int
    path_links: List[int]
    slots: List[int]

    def bandwidth_fraction(self, table_size: int) -> float:
        """Reserved share of the link: the 1/S bandwidth quantisation
        of slot-table NoCs (paper Section 6)."""
        return len(self.slots) / table_size


class TdmSlotTable:
    """Slot reservations for one link."""

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("slot table needs at least one slot")
        self.size = size
        self.owner: List[Optional[int]] = [None] * size

    def free_slots(self) -> List[int]:
        """Indices of unreserved slots (available to new circuits; idle
        reserved slots still serve BE at run time)."""
        return [i for i, owner in enumerate(self.owner) if owner is None]

    def reserve(self, slot: int, connection_id: int) -> None:
        """Give ``slot`` to a connection; double-booking is an error —
        slot ownership is exclusive, that *is* the TDM guarantee."""
        if self.owner[slot] is not None:
            raise ValueError(f"slot {slot} already owned by "
                             f"{self.owner[slot]}")
        self.owner[slot] = connection_id

    def release(self, connection_id: int) -> None:
        """Return every slot held by ``connection_id`` (teardown)."""
        for index, owner in enumerate(self.owner):
            if owner == connection_id:
                self.owner[index] = None


class TdmPathAllocator:
    """Allocates aligned slots along multi-link paths.

    Slot s on link k must continue as slot (s + 1) mod S on link k+1 —
    the "contention-free routing" constraint of slot-table NoCs.  This is
    what makes TDM allocation a global puzzle, in contrast to MANGO's
    per-link independent VC choice.
    """

    def __init__(self, n_links: int, table_size: int):
        self.table_size = table_size
        self.tables = [TdmSlotTable(table_size) for _ in range(n_links)]
        self._ids = 0
        self.connections: Dict[int, TdmConnection] = {}

    def _aligned_free(self, path_links: Sequence[int], start_slot: int
                      ) -> bool:
        for offset, link in enumerate(path_links):
            slot = (start_slot + offset) % self.table_size
            if self.tables[link].owner[slot] is not None:
                return False
        return True

    def allocate(self, path_links: Sequence[int], n_slots: int
                 ) -> Optional[TdmConnection]:
        """Reserve ``n_slots`` aligned slot trains; None when impossible."""
        if n_slots < 1:
            raise ValueError("need at least one slot")
        found = [slot for slot in range(self.table_size)
                 if self._aligned_free(path_links, slot)]
        if len(found) < n_slots:
            return None
        self._ids += 1
        conn = TdmConnection(self._ids, list(path_links), found[:n_slots])
        for slot in conn.slots:
            for offset, link in enumerate(path_links):
                self.tables[link].reserve((slot + offset) % self.table_size,
                                          conn.connection_id)
        self.connections[conn.connection_id] = conn
        return conn

    def release(self, conn: TdmConnection) -> None:
        """Tear a circuit down, freeing its slot train on every link."""
        for link in conn.path_links:
            self.tables[link].release(conn.connection_id)
        self.connections.pop(conn.connection_id, None)

    def utilization(self, link: int) -> float:
        """Reserved fraction of one link's slot table (allocation-level
        utilisation, not run-time traffic)."""
        table = self.tables[link]
        return 1.0 - len(table.free_slots()) / table.size


def tdm_latency_bound_ns(slots: Sequence[int], table_size: int,
                         slot_ns: float, hops: int) -> float:
    """Worst-case network-entry latency of a TDM connection: the longest
    gap until the next reserved slot, plus one slot per hop."""
    if not slots:
        raise ValueError("connection owns no slots")
    ordered = sorted(slots)
    gaps = []
    for index, slot in enumerate(ordered):
        prev = ordered[index - 1] if index else ordered[-1] - table_size
        gaps.append(slot - prev)
    worst_wait = max(gaps) * slot_ns
    return worst_wait + hops * slot_ns
