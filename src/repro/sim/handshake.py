"""4-phase bundled-data handshake channels and pipelines.

The MANGO router is built from 4-phase bundled-data control (Section 6 of
the paper).  At the event level a handshake channel is characterised by two
numbers:

* ``forward_latency`` — request+data propagation from sender to receiver
  (how long a flit takes to appear at the far side), and
* ``cycle_time`` — the minimum time between successive handshakes on the
  same channel (request, acknowledge, return-to-zero of both).

A chain of such stages has throughput ``1 / max(stage cycle_time)`` and
forward latency ``sum(stage forward_latency)`` — the classic asynchronous
pipeline result, which is what lets MANGO keep link speed up by pipelining
long links (Section 3).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from .kernel import Simulator, SimulationError
from .resources import Store

__all__ = ["HandshakeChannel", "PipelineStage", "PipelineChain"]


class HandshakeChannel:
    """Point-to-point 4-phase channel with one flit in flight.

    ``send`` (a sub-generator) completes once the handshake cycle finishes
    at the sender side; the data becomes available to ``recv`` after the
    forward latency.  Back-pressure is inherent: a sender blocks until the
    receiver has accepted the previous item.
    """

    def __init__(self, sim: Simulator, forward_latency: float,
                 cycle_time: float, name: str = ""):
        if forward_latency < 0 or cycle_time < 0:
            raise ValueError("latencies must be non-negative")
        if cycle_time < forward_latency:
            raise ValueError(
                f"cycle_time {cycle_time} < forward_latency {forward_latency}"
                " (the 4-phase return leg cannot be negative)")
        self.sim = sim
        self.forward_latency = forward_latency
        self.cycle_time = cycle_time
        self.name = name
        self._slot = Store(sim, capacity=1, name=f"{name}.slot")
        self._last_send_done = -float("inf")
        self.sent = 0
        self.received = 0

    def send(self, data: Any):
        """Sub-generator: complete one handshake transferring ``data``."""
        gap = self._last_send_done + self.cycle_time - self.sim.now
        # Enforce the RTZ spacing even if the receiver is fast.
        if gap > self.forward_latency:
            yield self.sim.timeout(gap - self.forward_latency)
        yield self.sim.timeout(self.forward_latency)
        yield self._slot.put(data)
        self._last_send_done = self.sim.now
        self.sent += 1

    def recv(self):
        """Sub-generator: yield until data arrives; returns the data."""
        data = yield self._slot.get()
        self.received += 1
        return data

    def try_recv(self) -> Any:
        return self._slot.try_get()


class PipelineStage:
    """One bundled-data latch stage between an input and output channel."""

    def __init__(self, sim: Simulator, inp: HandshakeChannel,
                 out: HandshakeChannel, name: str = "",
                 transform: Optional[Callable[[Any], Any]] = None):
        self.sim = sim
        self.inp = inp
        self.out = out
        self.name = name
        self.transform = transform
        self.occupancy = 0
        self.process = sim.process(self._run(), name=f"stage:{name}")

    def _run(self):
        while True:
            data = yield from self.inp.recv()
            self.occupancy += 1
            if self.transform is not None:
                data = self.transform(data)
            yield from self.out.send(data)
            self.occupancy -= 1


class PipelineChain:
    """A chain of N identical stages — models a pipelined long link.

    ``feed`` and ``drain`` expose the end channels.  Forward latency and
    throughput follow the asynchronous pipeline laws; unit tests verify
    them against first principles.
    """

    def __init__(self, sim: Simulator, stages: int, forward_latency: float,
                 cycle_time: float, name: str = "chain"):
        if stages < 1:
            raise ValueError("need at least one stage")
        self.sim = sim
        self.name = name
        self.channels: List[HandshakeChannel] = [
            HandshakeChannel(sim, forward_latency, cycle_time,
                             name=f"{name}.ch{i}")
            for i in range(stages + 1)
        ]
        self.stages = [
            PipelineStage(sim, self.channels[i], self.channels[i + 1],
                          name=f"{name}.st{i}")
            for i in range(stages)
        ]

    @property
    def head(self) -> HandshakeChannel:
        return self.channels[0]

    @property
    def tail(self) -> HandshakeChannel:
        return self.channels[-1]

    @property
    def total_forward_latency(self) -> float:
        return sum(ch.forward_latency for ch in self.channels)

    @property
    def min_cycle_time(self) -> float:
        return max(ch.cycle_time for ch in self.channels)

    def send(self, data: Any):
        return self.head.send(data)

    def recv(self):
        return self.tail.recv()
