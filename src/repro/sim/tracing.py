"""Structured event tracing for simulations.

Routers, arbiters and adapters emit :class:`TraceRecord` entries through an
attached :class:`Tracer`.  Tests assert on event sequences; examples render
timelines; the observability layer (:mod:`repro.obs.trace`) exports them as
Chrome trace-event JSON.  Tracing is off (a no-op ``NULL_TRACER``) unless
enabled, so the hot simulation path stays cheap.

The tracer is a *bounded ring buffer*: it retains the newest
``max_records`` records and counts what it sheds in :attr:`Tracer.drop_count`
— a soak run with tracing enabled stays at constant memory.  Consumers that
need every record attach a streaming ``sink`` callable, which sees each
record exactly once at emit time, before the ring may drop it.
"""

from __future__ import annotations

import io
from collections import deque
from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["DEFAULT_MAX_RECORDS", "TraceRecord", "Tracer", "NullTracer",
           "NULL_TRACER"]

#: Ring-buffer capacity unless the caller picks one: enough for the tail
#: of any scenario, small enough (~tens of MB worst case) that leaving a
#: tracer enabled on a soak run cannot exhaust memory.
DEFAULT_MAX_RECORDS = 65_536


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: what happened, where, when."""

    time: float
    source: str
    kind: str
    info: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        info = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.time:12.3f} ns  {self.source:<28s} {self.kind:<18s} {info}"


class Tracer:
    """Collects trace records in a bounded ring; supports filtering, CSV
    export, and an optional streaming ``sink``.

    ``max_records`` bounds :attr:`records` (pass ``None`` for an unbounded
    buffer — tests over short runs only).  When the ring is full, the
    oldest record is shed and :attr:`drop_count` increments; ``sink`` (any
    callable taking a :class:`TraceRecord`) still sees every record, so
    streaming exporters never lose data to the ring.
    """

    def __init__(self, enabled: bool = True,
                 max_records: Optional[int] = DEFAULT_MAX_RECORDS,
                 sink: Optional[Callable[[TraceRecord], None]] = None):
        self.enabled = enabled
        self.max_records = max_records
        self.records: Deque[TraceRecord] = deque(maxlen=max_records)
        self.drop_count = 0
        self.sink = sink

    def emit(self, time: float, source: str, kind: str, **info: Any) -> None:
        if not self.enabled:
            return
        record = TraceRecord(time, source, kind, info)
        if self.sink is not None:
            self.sink(record)
        records = self.records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.drop_count += 1
        records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        out = []
        for rec in self.records:
            if source is not None and source != rec.source:
                continue
            if kind is not None and kind != rec.kind:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.kind] = counts.get(rec.kind, 0) + 1
        return counts

    def clear(self) -> None:
        """Empty the ring and reset :attr:`drop_count`."""
        self.records.clear()
        self.drop_count = 0

    def dump(self, limit: Optional[int] = None) -> str:
        records = self.records if limit is None \
            else islice(self.records, limit)
        return "\n".join(rec.format() for rec in records)

    def to_csv(self) -> str:
        """Render all retained records as CSV (info flattened to key=value)."""
        buf = io.StringIO()
        buf.write("time,source,kind,info\n")
        for rec in self.records:
            info = ";".join(f"{k}={v}" for k, v in sorted(rec.info.items()))
            buf.write(f"{rec.time},{rec.source},{rec.kind},{info}\n")
        return buf.getvalue()


class NullTracer(Tracer):
    """Tracer that drops everything (the default)."""

    def __init__(self):
        super().__init__(enabled=False, max_records=0)

    def emit(self, time: float, source: str, kind: str, **info: Any) -> None:
        pass


NULL_TRACER = NullTracer()
