"""Structured event tracing for simulations.

Routers, arbiters and adapters emit :class:`TraceRecord` entries through an
attached :class:`Tracer`.  Tests assert on event sequences; examples render
timelines.  Tracing is off (a no-op ``NULL_TRACER``) unless enabled, so the
hot simulation path stays cheap.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence: what happened, where, when."""

    time: float
    source: str
    kind: str
    info: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        info = " ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"{self.time:12.3f} ns  {self.source:<28s} {self.kind:<18s} {info}"


class Tracer:
    """Collects trace records; supports filtering and CSV export."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []

    def emit(self, time: float, source: str, kind: str, **info: Any) -> None:
        if self.enabled:
            self.records.append(TraceRecord(time, source, kind, info))

    def __len__(self) -> int:
        return len(self.records)

    def filter(self, source: Optional[str] = None, kind: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        out = []
        for rec in self.records:
            if source is not None and source != rec.source:
                continue
            if kind is not None and kind != rec.kind:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for rec in self.records:
            counts[rec.kind] = counts.get(rec.kind, 0) + 1
        return counts

    def clear(self) -> None:
        self.records.clear()

    def dump(self, limit: Optional[int] = None) -> str:
        records = self.records if limit is None else self.records[:limit]
        return "\n".join(rec.format() for rec in records)

    def to_csv(self) -> str:
        """Render all records as CSV (info dict flattened to key=value)."""
        buf = io.StringIO()
        buf.write("time,source,kind,info\n")
        for rec in self.records:
            info = ";".join(f"{k}={v}" for k, v in sorted(rec.info.items()))
            buf.write(f"{rec.time},{rec.source},{rec.kind},{info}\n")
        return buf.getvalue()


class NullTracer(Tracer):
    """Tracer that drops everything (the default)."""

    def __init__(self):
        super().__init__(enabled=False)

    def emit(self, time: float, source: str, kind: str, **info: Any) -> None:
        pass


NULL_TRACER = NullTracer()
