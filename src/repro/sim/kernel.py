"""Discrete-event simulation kernel.

This is the substrate on which the clockless MANGO circuits are modelled.
SimPy is not available in this offline environment, so the kernel is built
from scratch with the same programming model: *processes* are Python
generators that ``yield`` events; the :class:`Simulator` advances virtual
time (in nanoseconds) by popping events off a heap in deterministic order.

Determinism matters for reproducing the paper's guarantees: two events at
the same timestamp are ordered by (priority, insertion sequence), so a run
with fixed seeds is bit-reproducible.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
]

# Scheduling priorities: lower value pops first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2

_PENDING = object()


class SimulationError(Exception):
    """Raised for kernel-level protocol violations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once it has a value (success or failure) and
    *processed* once its callbacks have run.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok = True
        # A failed event is "defused" once some process has received its
        # exception; an undefused failure crashes the simulation so that
        # errors never pass silently.
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully; callbacks run after ``delay``."""
        if self.triggered:
            raise SimulationError("event already triggered")
        self._ok = True
        self._value = value
        self.sim._enqueue(self, delay, priority)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if self.triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self.sim._enqueue(self, delay)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; if already processed it fires immediately
        on the next kernel step (same timestamp)."""
        if self.callbacks is not None:
            self.callbacks.append(callback)
        else:
            proxy = Event(self.sim)
            proxy._ok = self._ok
            proxy._value = self._value
            proxy.callbacks = [callback]
            self.sim._enqueue(proxy, 0.0, PRIORITY_URGENT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after its creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._ok = True
        self._value = value
        sim._enqueue(self, delay)


class _ConditionValue:
    """Mapping of events to values for AnyOf/AllOf results."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: dict = {}

    def __getitem__(self, event):
        return self.events[event]

    def __contains__(self, event):
        return event in self.events

    def __len__(self):
        return len(self.events)

    def todict(self) -> dict:
        return dict(self.events)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulators")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> _ConditionValue:
        result = _ConditionValue()
        for event in self._events:
            if event.triggered and event._ok:
                result.events[event] = event._value
        return result

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True  # the condition takes over the failure
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any child event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Triggers when all child events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)


class Process(Event):
    """A generator-based coroutine driven by the events it yields.

    The process object itself is an event that triggers when the generator
    returns (its value is the ``return`` value), so processes can wait on
    each other.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        bootstrap = Event(sim)
        bootstrap._ok = True
        bootstrap._value = None
        bootstrap.callbacks = [self._resume]
        sim._enqueue(bootstrap, 0.0)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks = [self._resume]
        self.sim._enqueue(poke, 0.0, PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        # If we were waiting on another event, detach from it (relevant for
        # interrupts arriving while blocked).
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    exc = event._value
                    next_event = self._generator.throw(exc)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if not self.triggered:
                    self.fail(exc)
                else:  # pragma: no cover - defensive
                    raise
                return

            if not isinstance(next_event, Event):
                error = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                try:
                    self._generator.throw(error)
                except StopIteration:
                    pass
                except SimulationError:
                    pass
                self.fail(error)
                return

            if next_event.callbacks is not None:
                # Not yet processed: park until it fires.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                return
            # Already processed: consume its value immediately.
            event = next_event


class Simulator:
    """Event loop: a heap of (time, priority, sequence, event)."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq,
                                    event))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if the heap is empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process one event (advance time to it, run its callbacks)."""
        if not self._heap:
            raise SimulationError("step() on an empty event heap")
        when, _priority, _seq, event = heapq.heappop(self._heap)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event._defused:
            # No process consumed the failure: surface it here rather
            # than letting the error pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        if until is not None:
            if until < self._now:
                raise SimulationError(
                    f"until={until} is before now={self._now}")
            while self._heap and self._heap[0][0] <= until:
                self.step()
            self._now = max(self._now, until)
            return
        while self._heap:
            self.step()

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a process to completion and return its value."""
        proc = self.process(generator, name=name)
        # run_process observes the outcome itself, so a failure is not an
        # "unhandled" one — it is re-raised below, at the call site.
        proc._defused = True
        while not proc.triggered:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: process {proc.name!r} never finished")
            self.step()
        if not proc._ok:
            raise proc._value
        return proc._value
