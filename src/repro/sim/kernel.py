"""Discrete-event simulation kernel.

This is the substrate on which the clockless MANGO circuits are modelled.
SimPy is not available in this offline environment, so the kernel is built
from scratch with the same programming model: *processes* are Python
generators that ``yield`` events; the :class:`Simulator` advances virtual
time (in nanoseconds) by popping events off a heap in deterministic order.

Determinism matters for reproducing the paper's guarantees: two events at
the same timestamp are ordered by (priority, insertion sequence), so a run
with fixed seeds is bit-reproducible.

Hot-path design notes (the kernel dominates large-mesh runtime):

* ``Event.callbacks`` is stored lazily: ``None`` while no callback is
  attached, a bare callable for the common single-waiter case, a list only
  when several waiters pile up, and the ``_PROCESSED`` sentinel once the
  event has been dispatched.  This avoids a list allocation per event and
  an append per yield.
* Pending entries live in a pluggable *scheduler* (``docs/kernel.md``).
  The default is :class:`CalendarQueue`, a calendar/bucket queue tuned to
  wire-delay granularity: entries hash into fixed-width time buckets
  (width auto-calibrated from the inter-event deltas of the first pushes),
  the due bucket is sorted once and consumed by pointer, and far-future
  timers overflow into a plain binary-heap fallback.  ``scheduler="heap"``
  (or ``REPRO_SCHEDULER=heap``) selects the PR 1 ``heapq`` scheduler —
  still the reference model, no longer the canonical hot path — and both
  drain in the identical (time, priority, seq) total order, so simulation
  output is byte-for-byte the same under either backend.
* :class:`Timeout` construction and :meth:`Event.succeed` push through the
  prebound ``Simulator._push`` instead of going through
  :meth:`Simulator._enqueue`.
* :meth:`Simulator.defer` schedules a plain ``fn(*args)`` with no
  :class:`Event` allocation at all — links use it for flit delivery and
  unlock/credit wires, the highest-volume scheduling in the system.
* :meth:`Simulator._drain` is the *only* drive loop: :meth:`Simulator.run`
  and :meth:`Simulator.run_until_triggered` are thin wrappers over it (via
  :meth:`Simulator.run_batch`), never separate stepping paths.
* ``events_processed`` counts *logical* events dispatched: scheduler
  entries, synchronous :func:`fire` deliveries, inline consumptions of
  already-processed events, and wire hops condensed away by link-segment
  batching (``repro.backends.graphnet``).  All four were scheduler
  round-trips in the seed kernel; counting them keeps events/sec
  comparable as optimisations move work off the scheduler.
"""

from __future__ import annotations

import os
from bisect import insort
from functools import partial
from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "Simulator",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "PRIORITY_LATE",
    "CalendarQueue",
    "HeapQueue",
    "SCHEDULERS",
    "DEFAULT_SCHEDULER",
]

# Scheduling priorities: lower value pops first at equal timestamps.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1
PRIORITY_LATE = 2

_PENDING = object()

#: Sentinel stored in ``Event.callbacks`` once the event has been
#: dispatched by the event loop.
_PROCESSED = object()

_INF = float("inf")


def fire(event: "Event", value: Any = None) -> None:
    """Succeed ``event`` and run its callbacks *synchronously*, skipping
    the heap entirely.

    Only valid for success at the current simulated time, from code that
    is itself running inside the event loop (a callback or a resumed
    process): the woken continuations execute immediately, nested in the
    caller's dispatch, instead of at a later same-timestamp heap slot.
    Resources use this for waiter wake-ups, where the waiter's next step
    is always either another wait or a time-consuming operation.
    """
    if event._value is not _PENDING:
        # Without this guard a double trigger would run callbacks twice
        # and leave a stale scheduler entry that crashes far from the cause.
        raise SimulationError("event already triggered")
    event.sim.events_processed += 1
    event._ok = True
    event._value = value
    cbs = event.callbacks
    event.callbacks = _PROCESSED
    if cbs is not None:
        if type(cbs) is list:
            for callback in cbs:
                callback(event)
        else:
            cbs(event)


class SimulationError(Exception):
    """Raised for kernel-level protocol violations (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once it has a value (success or failure) and
    *processed* once its callbacks have run.  Processes wait on events by
    yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        # None -> no callbacks yet; callable -> exactly one; list -> many;
        # _PROCESSED -> the event loop has dispatched this event.
        self.callbacks: Any = None
        self._value: Any = _PENDING
        self._ok = True
        # A failed event is "defused" once some process has received its
        # exception; an undefused failure crashes the simulation so that
        # errors never pass silently.
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is _PROCESSED

    @property
    def ok(self) -> bool:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0,
                priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event successfully; callbacks run after ``delay``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._ok = True
        self._value = value
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + delay, priority, seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0,
             priority: int = PRIORITY_NORMAL) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown.

        Accepts the same ``priority`` as :meth:`succeed`, so failure
        callbacks can be ordered against urgent interrupts at the same
        timestamp.
        """
        if self._value is not _PENDING:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._ok = False
        self._value = exception
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + delay, priority, seq, self))
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; if already processed it fires immediately
        on the next kernel step (same timestamp)."""
        cbs = self.callbacks
        if cbs is None:
            self.callbacks = callback
        elif cbs is _PROCESSED:
            proxy = Event(self.sim)
            proxy._ok = self._ok
            proxy._value = self._value
            # Carry the defused state: attaching a benign callback to an
            # already-consumed failure must not re-raise it from the loop.
            proxy._defused = self._defused
            proxy.callbacks = callback
            self.sim._enqueue(proxy, 0.0, PRIORITY_URGENT)
        elif type(cbs) is list:
            cbs.append(callback)
        else:
            self.callbacks = [cbs, callback]

    @classmethod
    def completed(cls, sim: "Simulator", value: Any = None) -> "Event":
        """A successfully *processed* event, never touching the heap.

        Yielding it resumes the process inline (see
        :meth:`Process._do_resume`'s already-processed fast path), so
        resources whose wait condition is already satisfied — a non-empty
        store, an open gate, a free mutex — cost no heap traffic at all.
        """
        event = cls.__new__(cls)
        event.sim = sim
        event.callbacks = _PROCESSED
        event._value = value
        event._ok = True
        event._defused = False
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at t={self.sim.now:.3f}>"


class Timeout(Event):
    """An event that fires ``delay`` ns after its creation.

    Construction is the single hottest allocation in the system (every
    ``yield sim.timeout(...)`` makes one), so it writes its slots and
    pushes through the prebound scheduler fast path, bypassing the
    generic init chain.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.sim = sim
        self.callbacks = None
        self._value = value
        self._ok = True
        self._defused = False
        sim._seq = seq = sim._seq + 1
        sim._push((sim._now + delay, PRIORITY_NORMAL, seq, self))


class _ConditionValue:
    """Mapping of events to values for AnyOf/AllOf results."""

    __slots__ = ("events",)

    def __init__(self):
        self.events: dict = {}

    def __getitem__(self, event):
        return self.events[event]

    def __contains__(self, event):
        return event in self.events

    def __len__(self):
        return len(self.events)

    def todict(self) -> dict:
        return dict(self.events)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes simulators")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for event in self._events:
            event.add_callback(self._check)

    def _collect(self) -> _ConditionValue:
        result = _ConditionValue()
        for event in self._events:
            if event._value is not _PENDING and event._ok:
                result.events[event] = event._value
        return result

    def _check(self, event: Event) -> None:
        if self._value is not _PENDING:
            return
        if not event._ok:
            event._defused = True  # the condition takes over the failure
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any child event succeeds."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Triggers when all child events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self._events)


class Process(Event):
    """A generator-based coroutine driven by the events it yields.

    The process object itself is an event that triggers when the generator
    returns (its value is the ``return`` value), so processes can wait on
    each other.
    """

    __slots__ = ("_generator", "_target", "_resume", "name")

    def __init__(self, sim: "Simulator",
                 generator: Generator[Event, Any, Any],
                 name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise TypeError("Process requires a generator")
        self._generator = generator
        self._target: Optional[Event] = None
        # One bound method reused for every park/notify instead of a fresh
        # bound-method object per yield.
        self._resume = self._do_resume
        self.name = name or getattr(generator, "__name__", "process")
        # First resume rides a shared pre-completed event: a 16x16 mesh
        # boots >20k processes, so the per-process bootstrap Event is
        # replaced by one deferred call against a singleton.
        sim.defer(0.0, self._resume, sim._boot_event)

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise SimulationError("cannot interrupt a finished process")
        poke = Event(self.sim)
        poke._ok = False
        poke._value = Interrupt(cause)
        poke.callbacks = self._resume
        self.sim._enqueue(poke, 0.0, PRIORITY_URGENT)

    def _do_resume(self, event: Event) -> None:
        # If we were waiting on another event, detach from it (relevant for
        # interrupts arriving while blocked).
        resume = self._resume
        target = self._target
        if target is not None:
            cbs = target.callbacks
            if cbs is resume:
                target.callbacks = None
            elif type(cbs) is list:
                try:
                    cbs.remove(resume)
                except ValueError:
                    pass
            self._target = None

        generator = self._generator
        send = generator.send
        throw = generator.throw
        while True:
            try:
                if event._ok:
                    next_event = send(event._value)
                else:
                    event._defused = True
                    next_event = throw(event._value)
            except StopIteration as stop:
                if self._value is _PENDING:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if self._value is _PENDING:
                    self.fail(exc)
                else:  # pragma: no cover - defensive
                    raise
                return

            try:
                cbs = next_event.callbacks
            except AttributeError:
                # EAFP stand-in for isinstance(next_event, Event): only
                # kernel events carry a callbacks slot.
                error = SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event")
                try:
                    throw(error)
                except StopIteration:
                    pass
                except SimulationError:
                    pass
                self.fail(error)
                return

            if cbs is not _PROCESSED:
                # Not yet processed: park until it fires.
                if cbs is None:
                    next_event.callbacks = resume
                elif type(cbs) is list:
                    cbs.append(resume)
                else:
                    next_event.callbacks = [cbs, resume]
                self._target = next_event
                return
            # Already processed: consume its value immediately.  This is
            # a logical event delivered without a scheduler round-trip
            # (Event.completed fast path), so it counts as processed.
            self.sim.events_processed += 1
            event = next_event


class HeapQueue:
    """The PR 1 scheduler: one binary heap of mixed-width entry tuples.

    Kept as the reference model for the calendar queue (and selectable
    with ``scheduler="heap"`` for A/B benchmarks): ``heapq`` pops entries
    in exact (time, priority, seq) order because ``seq`` is globally
    unique, so tuple comparison never reaches the mixed-width tail.
    """

    name = "heap"

    __slots__ = ("_heap", "push")

    def __init__(self):
        self._heap: list = []
        # C-level partial: Timeout construction calls this once per event,
        # so the heap backend pays no Python-frame overhead on push.
        self.push = partial(heappush, self._heap)

    def pop_due(self, until: float):
        """Pop and return the earliest entry with time <= ``until``,
        or ``None`` when nothing is due."""
        heap = self._heap
        if heap and heap[0][0] <= until:
            return heappop(heap)
        return None

    def peek(self) -> float:
        heap = self._heap
        return heap[0][0] if heap else _INF

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class CalendarQueue:
    """Calendar/bucket scheduler tuned to wire-delay granularity.

    Entries hash into fixed-width time buckets (``idx = int(t / width)``,
    a dict so empty buckets cost nothing); a lazy min-heap of bucket
    indices orders the buckets; the due bucket is sorted once and consumed
    through a pointer, with same-bucket pushes ``insort``-ed behind the
    pointer.  Entries beyond ``horizon`` buckets overflow into a plain
    binary heap — the far-future fallback for drain deadlines and watchdog
    timers that would otherwise bloat the bucket index space.

    The bucket width is auto-calibrated: the first ``calibration`` pushes
    ride the overflow heap while their timestamps are sampled, then the
    width is set to a small multiple of the mean non-zero inter-event
    delta.  Pass an explicit ``width`` to skip calibration (tests do).

    Drain order is *exactly* the (time, priority, seq) tuple order of the
    ``heapq`` reference: ``int(t / width)`` is monotone in ``t``, so
    bucket order respects time order, and each bucket is sorted by full
    tuple comparison.  Determinism is non-negotiable — the golden
    fingerprints pin it across both schedulers.

    The invariant making pointer-consumption safe is that pushes never go
    backwards in time: the kernel rejects negative delays, so every push
    lands at or after the last popped entry.
    """

    name = "calendar"

    __slots__ = ("_width", "_inv", "_horizon", "_buckets", "_bucket_heap",
                 "_cur_list", "_cur_ptr", "_cur_idx", "_far", "_far_limit",
                 "_len", "_samples", "_calibration", "width_factor")

    def __init__(self, width: Optional[float] = None, horizon: int = 8192,
                 calibration: int = 128, width_factor: float = 4.0):
        self._buckets: dict = {}        # bucket idx -> unsorted entry list
        self._bucket_heap: list = []    # lazy min-heap of bucket indices
        self._cur_list: list = []       # sorted bucket being consumed
        self._cur_ptr = 0
        self._cur_idx = -1
        self._far: list = []            # binary-heap fallback
        self._len = 0
        self._horizon = horizon
        self._calibration = calibration
        self.width_factor = width_factor
        if width is not None:
            if width <= 0:
                raise ValueError(f"bucket width must be positive: {width}")
            self._width = width
            self._inv = 1.0 / width
            self._far_limit = horizon * width
            self._samples: Optional[list] = None
        else:
            self._width = 0.0
            self._inv = 0.0
            self._far_limit = -1.0      # everything far until calibrated
            self._samples = []

    @property
    def bucket_width(self) -> Optional[float]:
        """Calibrated bucket width in ns (``None`` before calibration)."""
        return self._width or None

    def _calibrate(self) -> None:
        samples = sorted(self._samples)
        self._samples = None
        deltas = [b - a for a, b in zip(samples, samples[1:]) if b > a]
        if deltas:
            width = self.width_factor * (sum(deltas) / len(deltas))
        else:
            width = 1.0                 # degenerate: all-equal timestamps
        self._width = max(width, 1e-9)
        self._inv = 1.0 / self._width
        # Buckets start from wherever the pending entries sit; the far
        # heap drains into them through the migration path in _pop_slow.
        base = int(self._far[0][0] * self._inv) if self._far else 0
        self._far_limit = (base + self._horizon) * self._width

    def push(self, entry) -> None:
        self._len += 1
        t = entry[0]
        if t >= self._far_limit:        # far future (or pre-calibration)
            heappush(self._far, entry)
            samples = self._samples
            if samples is not None:
                samples.append(t)
                if len(samples) >= self._calibration:
                    self._calibrate()
            return
        idx = int(t * self._inv)
        ci = self._cur_idx
        if idx <= ci:
            # Lands in (or, through float rounding, at the edge of) the
            # bucket being consumed: insort behind the pointer keeps full
            # tuple order.  Everything before the pointer is already
            # dispatched and has time <= t, so lo=ptr is safe.
            insort(self._cur_list, entry, self._cur_ptr)
            return
        bucket = self._buckets.get(idx)
        if bucket is None:
            self._buckets[idx] = [entry]
            heappush(self._bucket_heap, idx)
        else:
            bucket.append(entry)

    def pop_due(self, until: float):
        """Pop and return the earliest entry with time <= ``until``,
        or ``None`` when nothing is due."""
        lst = self._cur_list
        ptr = self._cur_ptr
        if ptr < len(lst):
            entry = lst[ptr]
            if entry[0] <= until:
                self._cur_ptr = ptr + 1
                self._len -= 1
                return entry
            return None
        return self._pop_slow(until)

    def _pop_slow(self, until: float):
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        far = self._far
        while True:
            while bucket_heap and bucket_heap[0] not in buckets:
                heappop(bucket_heap)    # stale index of a consumed bucket
            if not bucket_heap:
                # Pure-heap mode: pre-calibration, or only far entries
                # left.  The far heap is globally ordered on its own.
                if far and far[0][0] <= until:
                    self._len -= 1
                    return heappop(far)
                return None
            nb = bucket_heap[0]
            if far and far[0][0] < (nb + 1) * self._width:
                # Far entries due inside (or before) the next bucket:
                # migrate their whole bucket, then reselect.
                fidx = int(far[0][0] * self._inv)
                bucket = buckets.get(fidx)
                if bucket is None:
                    buckets[fidx] = bucket = []
                    heappush(bucket_heap, fidx)
                while far and int(far[0][0] * self._inv) == fidx:
                    bucket.append(heappop(far))
                continue
            lst = buckets.pop(nb)
            heappop(bucket_heap)
            lst.sort()
            self._cur_list = lst
            self._cur_idx = nb
            entry = lst[0]
            if entry[0] <= until:
                self._cur_ptr = 1
                self._len -= 1
                return entry
            self._cur_ptr = 0
            return None

    def peek(self) -> float:
        lst = self._cur_list
        ptr = self._cur_ptr
        if ptr < len(lst):
            return lst[ptr][0]
        buckets = self._buckets
        bucket_heap = self._bucket_heap
        while bucket_heap and bucket_heap[0] not in buckets:
            heappop(bucket_heap)
        best = _INF
        if bucket_heap:
            best = min(buckets[bucket_heap[0]])[0]
        far = self._far
        if far and far[0][0] < best:
            best = far[0][0]
        return best

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0


#: Scheduler registry: name -> zero-arg factory.  ``Simulator`` resolves
#: ``scheduler=None`` through :data:`DEFAULT_SCHEDULER`, overridable per
#: process with the ``REPRO_SCHEDULER`` environment variable (benchmarks
#: A/B the backends without threading a parameter through every network
#: constructor).
SCHEDULERS: dict = {"heap": HeapQueue, "calendar": CalendarQueue}

DEFAULT_SCHEDULER = "calendar"


def _resolve_scheduler(scheduler):
    if scheduler is None:
        scheduler = os.environ.get("REPRO_SCHEDULER", "") or DEFAULT_SCHEDULER
    if isinstance(scheduler, str):
        try:
            return SCHEDULERS[scheduler]()
        except KeyError:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                f"registered: {sorted(SCHEDULERS)}") from None
    return scheduler                    # instance with push/pop_due/peek


class Simulator:
    """Event loop over a pluggable scheduler of (time, priority, seq, ...)
    entries.

    Deferred plain calls (see :meth:`defer`) ride the same scheduler as
    ``(time, priority, sequence, None, fn, args)`` entries — the first
    three elements alone order the queue, so entry widths may mix.

    ``scheduler`` is a name from :data:`SCHEDULERS` (``"calendar"`` /
    ``"heap"``), a pre-built queue instance, or ``None`` for the
    ``REPRO_SCHEDULER`` / :data:`DEFAULT_SCHEDULER` resolution chain.
    Both backends drain in the identical total order; the choice affects
    wall-clock speed only, never simulation output.

    ``profile`` opts into callback-site profiling: pass a profiler (any
    object with ``record(fn, seconds)`` and ``overhead(seconds)`` — see
    :class:`repro.obs.profile.CallSiteProfiler`) or ``True`` for a fresh
    one.  Profiling swaps the drive loop for an instrumented twin that
    times every dispatch; with ``profile=None`` (the default) the hot
    loop is untouched — the only cost is one ``is None`` check per
    *drain call*, never per event.
    """

    def __init__(self, scheduler=None, profile=None):
        sched = _resolve_scheduler(scheduler)
        self._sched = sched
        #: Scheduler backend name, surfaced in benchmark run headers.
        self.scheduler = sched.name
        # Prebound push fast path shared by Timeout/succeed/fail/defer.
        self._push = sched.push
        self._seq = 0
        self._now = 0.0
        #: Logical events dispatched so far: scheduler entries, fire()
        #: deliveries, inline consumptions of already-processed events,
        #: and hops condensed by link-segment batching (see the module
        #: docstring); benchmarks report events per wall-clock second.
        self.events_processed = 0
        if profile is True:
            # Deliberate upward seam (like network/connection.py -> alloc):
            # the profiler *type* lives in the observability layer; the
            # kernel only holds the duck-typed instance.
            from ..obs.profile import CallSiteProfiler
            profile = CallSiteProfiler()
        #: Active callback-site profiler, or ``None`` (the default).
        self.profile = profile or None
        # Shared ok/None event handed to every process's first resume.
        self._boot_event = Event.completed(self)

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq = seq = self._seq + 1
        self._push((self._now + delay, priority, seq, event))

    def defer(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run after ``delay`` ns.

        The cheapest way to model a wire: no :class:`Event` is allocated
        and nothing can wait on the result.  Links use this for flit
        delivery and for the reverse unlock/credit wires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        self._seq = seq = self._seq + 1
        self._push((self._now + delay, PRIORITY_NORMAL, seq, None, fn, args))

    def peek(self) -> float:
        """Time of the next event, or ``inf`` if nothing is scheduled."""
        return self._sched.peek()

    # -- the event loop ----------------------------------------------------

    def _drain(self, until: float, max_entries: Optional[int],
               stop_event: Optional[Event]) -> int:
        """Dispatch scheduler entries with time <= ``until``.

        Stops early after ``max_entries`` dispatches or once
        ``stop_event`` has triggered.  Returns the number dispatched.
        This single tight loop backs every public drive method.
        """
        if self.profile is not None:
            return self._drain_profiled(until, max_entries, stop_event)
        pop_due = self._sched.pop_due
        count = 0
        bounded = max_entries is not None or stop_event is not None
        try:
            while True:
                if bounded:
                    if count == max_entries:
                        break
                    if stop_event is not None and \
                            stop_event._value is not _PENDING:
                        break
                entry = pop_due(until)
                if entry is None:
                    break
                self._now = entry[0]
                count += 1
                event = entry[3]
                if event is None:
                    entry[4](*entry[5])
                    continue
                cbs = event.callbacks
                event.callbacks = _PROCESSED
                if cbs is not None:
                    if type(cbs) is list:
                        for callback in cbs:
                            callback(event)
                    else:
                        cbs(event)
                if not event._ok and not event._defused:
                    # No process consumed the failure: surface it here
                    # rather than letting the error pass silently.
                    raise event._value
        finally:
            self.events_processed += count
        return count

    def _drain_profiled(self, until: float, max_entries: Optional[int],
                        stop_event: Optional[Event]) -> int:
        """Instrumented twin of :meth:`_drain`: identical dispatch order,
        but every callback/deferred call is timed and attributed to its
        *site* through ``self.profile``.  Time the loop spends outside
        dispatches (scheduler pops, bookkeeping, the timer itself) is
        attributed separately via ``profile.overhead``, so the profiler's
        total accounts for essentially the whole drain wall time.

        Nested synchronous work (:func:`fire` deliveries, inline event
        consumptions) counts *inside* the dispatch that triggered it —
        inclusive timing, matching how a sampling profiler would blame
        the callback that kept the interpreter busy.
        """
        profile = self.profile
        record = profile.record
        pop_due = self._sched.pop_due
        count = 0
        bounded = max_entries is not None or stop_event is not None
        t_loop = perf_counter()
        dispatched_s = 0.0
        try:
            while True:
                if bounded:
                    if count == max_entries:
                        break
                    if stop_event is not None and \
                            stop_event._value is not _PENDING:
                        break
                entry = pop_due(until)
                if entry is None:
                    break
                self._now = entry[0]
                count += 1
                event = entry[3]
                if event is None:
                    fn = entry[4]
                    t0 = perf_counter()
                    fn(*entry[5])
                    dt = perf_counter() - t0
                    dispatched_s += dt
                    record(fn, dt)
                    continue
                cbs = event.callbacks
                event.callbacks = _PROCESSED
                if cbs is not None:
                    if type(cbs) is list:
                        for callback in cbs:
                            t0 = perf_counter()
                            callback(event)
                            dt = perf_counter() - t0
                            dispatched_s += dt
                            record(callback, dt)
                    else:
                        t0 = perf_counter()
                        cbs(event)
                        dt = perf_counter() - t0
                        dispatched_s += dt
                        record(cbs, dt)
                if not event._ok and not event._defused:
                    raise event._value
        finally:
            self.events_processed += count
            profile.overhead(perf_counter() - t_loop - dispatched_s)
        return count

    def step(self) -> None:
        """Process one event (advance time to it, run its callbacks)."""
        if not self._sched:
            raise SimulationError("step() on an empty event queue")
        self._drain(_INF, 1, None)

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue drains or simulated time reaches ``until``.

        A thin wrapper over :meth:`run_batch` (and thereby the single
        :meth:`_drain` loop) — no separate stepping path.
        """
        self.run_batch(until=until)

    def run_batch(self, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> int:
        """Deadline-driven stepping: dispatch up to ``max_events`` entries
        with time <= ``until`` and return how many ran.

        The clock only advances to ``until`` once everything due by then
        has been dispatched, so callers can pump the loop in slices::

            while sim.run_batch(deadline, max_events=10_000):
                ...  # interleave host-side work per batch

        Returns 0 when nothing is left before the deadline.
        """
        limit = _INF if until is None else until
        if limit < self._now:
            raise SimulationError(f"until={until} is before now={self._now}")
        count = self._drain(limit, max_events, None)
        if until is not None and self._sched.peek() > until:
            if self._now < until:
                self._now = until
        return count

    def run_until_triggered(self, event: Event,
                            max_ns: Optional[float] = None) -> bool:
        """Run until ``event`` triggers (or time passes ``max_ns`` / the
        heap drains).  Returns whether the event triggered.

        This replaces poll-every-N-ns driving: traffic harnesses wait on
        an :class:`AllOf` over their source processes instead of waking
        up per flit slot to check them.
        """
        limit = _INF if max_ns is None else max_ns
        if limit < self._now:
            raise SimulationError(
                f"max_ns={max_ns} is before now={self._now}")
        self._drain(limit, None, event)
        return event._value is not _PENDING

    def run_process(self, generator: Generator, name: str = "") -> Any:
        """Convenience: run a process to completion and return its value."""
        proc = self.process(generator, name=name)
        # run_process observes the outcome itself, so a failure is not an
        # "unhandled" one — it is re-raised below, at the call site.
        proc._defused = True
        self._drain(_INF, None, proc)
        if proc._value is _PENDING:
            raise SimulationError(
                f"deadlock: process {proc.name!r} never finished")
        if not proc._ok:
            raise proc._value
        return proc._value
