"""Discrete-event simulation substrate (kernel, resources, handshakes)."""

from .kernel import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    Simulator,
    SimulationError,
    Timeout,
)
from .resources import Gate, Resource, Signal, Store
from .handshake import HandshakeChannel, PipelineChain, PipelineStage
from .tracing import NULL_TRACER, NullTracer, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Gate",
    "HandshakeChannel",
    "Interrupt",
    "NULL_TRACER",
    "NullTracer",
    "PipelineChain",
    "PipelineStage",
    "Process",
    "Resource",
    "Signal",
    "Simulator",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
]
