"""Blocking resources built on the kernel: stores, signals, gates, mutexes.

These model the storage and wiring primitives of the clockless router:

* :class:`Store` — a capacity-bounded FIFO (VC buffers, unshare latches,
  BE queues are Stores of capacity 1..N).
* :class:`Signal` — a re-armable pulse; models a transition-signalled wire
  such as the per-VC *unlock* wire of the share-based VC control scheme.
* :class:`Gate` — a level wire that processes can wait to see open.
* :class:`Resource` — FIFO mutual exclusion (used in baseline routers where
  a shared crossbar *is* arbitrated, unlike MANGO's non-blocking switch).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional

from .kernel import Event, Simulator, SimulationError, fire

__all__ = ["Store", "Signal", "Gate", "Resource"]


class Store:
    """Capacity-bounded FIFO with peek support.

    ``put`` blocks while full, ``get`` blocks while empty.  ``when_any``
    returns an event that fires as soon as the store is non-empty *without*
    removing the item — the MANGO VC sender uses this to contend for the
    link while the flit stays in the buffer (the buffer slot is only freed
    when the flit actually departs).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: deque = deque()
        # Waiter queues are created on first use: a large mesh allocates
        # tens of thousands of stores and most never see contention.
        self._getters: Optional[deque] = None
        self._putters: Optional[deque] = None  # (event, item)
        self._peekers: Optional[deque] = None
        self._space_waiters: Optional[deque] = None

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self.items

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is in the store.

        When space is free the returned event is already processed, so a
        yielding process continues inline with no heap round-trip.
        """
        if len(self.items) < self.capacity and not self._putters:
            self.items.append(item)
            if self._peekers or self._getters:
                self._wake_consumers()
            return Event.completed(self.sim)
        event = Event(self.sim)
        if self._putters is None:
            self._putters = deque()
        self._putters.append((event, item))
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full."""
        if len(self.items) >= self.capacity or self._putters:
            return False
        self.items.append(item)
        if self._peekers or self._getters:
            self._wake_consumers()
        return True

    def get(self) -> Event:
        """Return an event whose value is the item removed from the head.

        Already processed (inline resume) when an item is waiting.
        """
        if self.items and not self._getters:
            item = self.items.popleft()
            if self._putters:
                self._admit_writers()
            if self._space_waiters:
                self._wake_space_waiters()
            return Event.completed(self.sim, item)
        event = Event(self.sim)
        if self._getters is None:
            self._getters = deque()
        self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty (or a waiter exists)."""
        if not self.items or self._getters:
            return None
        item = self.items.popleft()
        if self._putters:
            self._admit_writers()
        if self._space_waiters:
            self._wake_space_waiters()
        return item

    def when_space(self) -> Event:
        """Event that fires once the store has a free slot (immediately if
        one exists now).  Pure notification: nothing is reserved."""
        if len(self.items) < self.capacity:
            return Event.completed(self.sim)
        event = Event(self.sim)
        if self._space_waiters is None:
            self._space_waiters = deque()
        self._space_waiters.append(event)
        return event

    def _wake_space_waiters(self) -> None:
        while self._space_waiters and len(self.items) < self.capacity:
            fire(self._space_waiters.popleft())

    def when_any(self) -> Event:
        """Event that fires (with the head item, not removed) once the
        store is non-empty."""
        if self.items:
            return Event.completed(self.sim, self.items[0])
        event = Event(self.sim)
        if self._peekers is None:
            self._peekers = deque()
        self._peekers.append(event)
        return event

    def head(self) -> Any:
        """The head item without removing it (None when empty)."""
        return self.items[0] if self.items else None

    def _wake_consumers(self) -> None:
        while self._peekers and self.items:
            fire(self._peekers.popleft(), self.items[0])
        while self._getters and self.items:
            item = self.items.popleft()
            fire(self._getters.popleft(), item)
            if self._putters:
                self._admit_writers()

    def _admit_writers(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            event, item = self._putters.popleft()
            self.items.append(item)
            fire(event)
            # Newly stored item may satisfy a waiting getter/peeker.
            while self._peekers and self.items:
                fire(self._peekers.popleft(), self.items[0])
            while self._getters and self.items:
                got = self.items.popleft()
                fire(self._getters.popleft(), got)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Store {self.name!r} {len(self.items)}/{self.capacity} "
                f"getters={len(self._getters or ())} "
                f"putters={len(self._putters or ())}>")


class Signal:
    """A re-armable pulse: every ``pulse`` wakes all *current* waiters.

    Models transition signalling on a single wire (e.g. the unlock wire of
    the sharebox scheme): a waiter that subscribes after a pulse does not
    see that pulse.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._waiters: list = []
        self.pulse_count = 0

    def wait(self) -> Event:
        event = Event(self.sim)
        self._waiters.append(event)
        return event

    def pulse(self, value: Any = None) -> None:
        self.pulse_count += 1
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed(value)


class Gate:
    """A level-sensitive wire: open or closed; waiters pass when open."""

    def __init__(self, sim: Simulator, is_open: bool = False, name: str = ""):
        self.sim = sim
        self.name = name
        self._open = is_open
        self._waiters: list = []
        self.open_count = 0

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self) -> None:
        if self._open:
            return
        self._open = True
        self.open_count += 1
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                fire(event)

    def close(self) -> None:
        self._open = False

    def wait_open(self) -> Event:
        if self._open:
            return Event.completed(self.sim)
        event = Event(self.sim)
        self._waiters.append(event)
        return event


class Resource:
    """FIFO mutual exclusion over ``capacity`` slots."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users = 0
        self._queue: deque = deque()

    @property
    def in_use(self) -> int:
        return self._users

    @property
    def queued(self) -> int:
        return len(self._queue)

    def request(self) -> Event:
        if self._users < self.capacity and not self._queue:
            self._users += 1
            return Event.completed(self.sim)
        event = Event(self.sim)
        self._queue.append(event)
        return event

    def release(self) -> None:
        if self._users <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._queue:
            fire(self._queue.popleft())
        else:
            self._users -= 1
