"""Source routing for the BE router (paper Section 5).

A BE packet's header flit is a 32-bit word holding the route as 2-bit
direction codes, most-significant first.  At each hop the router reads the
two MSBs, rotates the header left by two bits, and forwards.  Choosing the
direction the packet *came from* means "deliver to the local port", so a
route is the list of moves followed by the opposite of the last move.  With
32-bit flits a packet can make at most 15 hops.

XY routing (x first, then y) is used to build routes; it is deadlock-free
for wormhole switching in a mesh.
"""

from __future__ import annotations

from typing import List, Tuple

from .topology import Coord, Direction

__all__ = [
    "MAX_HOPS",
    "RouteError",
    "xy_moves",
    "encode_source_route",
    "rotate_header",
    "header_direction",
    "walk_route",
    "reverse_moves",
    "route_for",
]

#: Maximum number of hops a 32-bit header supports (15 move codes + the
#: final "turn back" delivery code = 16 two-bit fields).
MAX_HOPS = 15

_HEADER_MASK = 0xFFFFFFFF


class RouteError(ValueError):
    """Raised for unroutable or over-long paths."""


def xy_moves(src: Coord, dst: Coord) -> List[Direction]:
    """Dimension-ordered (X then Y) move list from ``src`` to ``dst``."""
    if src == dst:
        raise RouteError(
            "same-tile BE traffic does not traverse the network; the "
            "adapter loops it back locally (see DESIGN.md)")
    moves: List[Direction] = []
    x, y = src
    step_x = Direction.EAST if dst.x > x else Direction.WEST
    while x != dst.x:
        moves.append(step_x)
        x += step_x.delta[0]
    step_y = Direction.SOUTH if dst.y > y else Direction.NORTH
    while y != dst.y:
        moves.append(step_y)
        y += step_y.delta[1]
    return moves


def encode_source_route(moves: List[Direction]) -> int:
    """Pack a move list into a 32-bit header.

    The code after the last move is the opposite of the last move — the
    "route back where you came from" convention that triggers local
    delivery at the destination router.
    """
    if not moves:
        raise RouteError("a source route needs at least one hop")
    if len(moves) > MAX_HOPS:
        raise RouteError(
            f"route of {len(moves)} hops exceeds the {MAX_HOPS}-hop limit "
            "of a 32-bit header")
    for move in moves:
        if not move.is_network:
            raise RouteError("source routes contain network directions only")
    header = 0
    shift = 30
    for move in moves:
        header |= int(move) << shift
        shift -= 2
    header |= int(moves[-1].opposite) << shift
    return header & _HEADER_MASK


def rotate_header(header: int) -> int:
    """Rotate the header left by two bits (done by each router)."""
    header &= _HEADER_MASK
    return ((header << 2) | (header >> 30)) & _HEADER_MASK


def header_direction(header: int) -> Direction:
    """The 2-bit direction code in the header MSBs."""
    return Direction((header >> 30) & 0x3)


def walk_route(src: Coord, header: int, max_hops: int = MAX_HOPS + 1
               ) -> Tuple[Coord, int]:
    """Simulate the header walk: (delivery tile, hops taken).

    Mirrors the router logic: at each tile, if the header directs back the
    way the packet came, it is delivered locally.
    """
    here = src
    came_from = None  # direction code that would send it back
    hops = 0
    while True:
        direction = header_direction(header)
        if came_from is not None and direction == came_from:
            return here, hops
        if hops >= max_hops:
            raise RouteError(f"route from {src} did not deliver within "
                             f"{max_hops} hops")
        here = here.step(direction)
        came_from = direction.opposite
        header = rotate_header(header)
        hops += 1


def reverse_moves(moves: List[Direction]) -> List[Direction]:
    """The return path of a route (reversed, each move opposed)."""
    return [move.opposite for move in reversed(moves)]


def route_for(src: Coord, dst: Coord) -> int:
    """Header for the XY route from ``src`` to ``dst``."""
    return encode_source_route(xy_moves(src, dst))
