"""Source routing for the BE router (paper Section 5), with chained
route headers for full-diameter traffic on large meshes.

A BE packet's header flit is a 32-bit word holding the route as 2-bit
direction codes, most-significant first.  At each hop the router reads the
two MSBs, rotates the header left by two bits, and forwards.  Choosing the
direction the packet *came from* means "deliver to the local port", so a
route is the list of moves followed by the opposite of the last move.  One
32-bit word therefore carries at most 15 moves (:data:`MAX_HOPS`).

Longer routes spill into **chained route words** — header-extension flits
that travel directly behind the header.  Every word uses the unchanged
single-word format (up to 15 moves, terminated by the turn-back marker);
what distinguishes "deliver here" from "continue with the next word" is
whether extension words remain behind the header.  When a router sees the
turn-back marker while extensions remain, it strips the spent route word
and promotes the next extension flit to be the new header for the same
hop decision.  Routes of at most 15 hops still use exactly one word, so
legacy headers are bit-for-bit identical.  A chain is capped at
:data:`MAX_ROUTE_WORDS` words, giving :func:`max_route_hops` hops — far
beyond the 30-hop diameter of a 16x16 mesh.

XY routing (x first, then y) is used to build routes; it is deadlock-free
for wormhole switching in a mesh.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from .topology import Coord, Direction

__all__ = [
    "MAX_HOPS",
    "MAX_ROUTE_WORDS",
    "RouteError",
    "as_route_words",
    "max_route_hops",
    "xy_moves",
    "encode_source_route",
    "encode_route",
    "decode_route",
    "rotate_header",
    "header_direction",
    "walk_route",
    "reverse_moves",
    "route_for",
    "route_words_for",
]

#: Maximum number of moves one 32-bit route word supports (15 move codes +
#: the "turn back" marker = 16 two-bit fields).
MAX_HOPS = 15

#: Maximum number of chained route words in one header; bounds the header
#: overhead of a packet and therefore the admission hop cap.
MAX_ROUTE_WORDS = 8

_HEADER_MASK = 0xFFFFFFFF


class RouteError(ValueError):
    """Raised for unroutable or over-long paths."""


def max_route_hops() -> int:
    """The longest route the chained-header encoder can express."""
    return MAX_ROUTE_WORDS * MAX_HOPS


def as_route_words(header: Union[int, Sequence[int]]) -> List[int]:
    """Normalise a route header (single word or word sequence) to a
    non-empty word list — the one place that owns the polymorphism."""
    words = [header] if isinstance(header, int) else list(header)
    if not words:
        raise RouteError("a route-word chain needs at least one word")
    return words


def xy_moves(src: Coord, dst: Coord) -> List[Direction]:
    """Dimension-ordered (X then Y) move list from ``src`` to ``dst``."""
    if src == dst:
        raise RouteError(
            "same-tile BE traffic does not traverse the network; the "
            "adapter loops it back locally (see DESIGN.md)")
    moves: List[Direction] = []
    x, y = src
    step_x = Direction.EAST if dst.x > x else Direction.WEST
    while x != dst.x:
        moves.append(step_x)
        x += step_x.delta[0]
    step_y = Direction.SOUTH if dst.y > y else Direction.NORTH
    while y != dst.y:
        moves.append(step_y)
        y += step_y.delta[1]
    return moves


def encode_source_route(moves: List[Direction]) -> int:
    """Pack a move list into a single 32-bit header word.

    The code after the last move is the opposite of the last move — the
    "route back where you came from" convention that triggers local
    delivery at the destination router (or, when extension words follow,
    promotion of the next route word).
    """
    if not moves:
        raise RouteError("a source route needs at least one hop")
    if len(moves) > MAX_HOPS:
        raise RouteError(
            f"route of {len(moves)} hops exceeds the {MAX_HOPS}-hop limit "
            "of a 32-bit header")
    for move in moves:
        if not move.is_network:
            raise RouteError("source routes contain network directions only")
    header = 0
    shift = 30
    for move in moves:
        header |= int(move) << shift
        shift -= 2
    header |= int(moves[-1].opposite) << shift
    return header & _HEADER_MASK


def encode_route(moves: List[Direction]) -> List[int]:
    """Pack a move list of any admissible length into a route-word chain.

    Routes of at most :data:`MAX_HOPS` moves produce exactly one word,
    identical to :func:`encode_source_route`; longer routes are chunked
    15 moves per word.  An immediate reversal (a move followed by its
    opposite) cannot be expressed — the 2-bit scheme reads it as the
    turn-back marker — and is rejected; XY routes never contain one.
    """
    if not moves:
        raise RouteError("a source route needs at least one hop")
    if len(moves) > max_route_hops():
        raise RouteError(
            f"route of {len(moves)} hops exceeds the {max_route_hops()}-hop "
            f"capacity of a {MAX_ROUTE_WORDS}-word header chain")
    for prev, move in zip(moves, moves[1:]):
        if move is prev.opposite:
            raise RouteError(
                "immediate reversal in a source route reads as the "
                "turn-back marker and cannot be encoded")
    return [encode_source_route(moves[index:index + MAX_HOPS])
            for index in range(0, len(moves), MAX_HOPS)]


def decode_route(words: Sequence[int]) -> List[Direction]:
    """Recover the move list from a route-word chain (inverse of
    :func:`encode_route`).

    Mirrors the router walk: within a word, the first code equal to the
    opposite of the previous move is the turn-back marker — end of the
    word (or of the route, in the final word).  A word whose sixteen
    fields never reach a marker is malformed: a router would cycle on it
    forever.
    """
    if not words:
        raise RouteError("empty route-word chain")
    moves: List[Direction] = []
    prev: Union[Direction, None] = None
    for word in words:
        word &= _HEADER_MASK
        exhausted = False
        for shift in range(30, -2, -2):
            code = Direction((word >> shift) & 0x3)
            if prev is not None and code is prev.opposite:
                exhausted = True
                break
            moves.append(code)
            prev = code
        if not exhausted:
            raise RouteError(
                f"route word {word:#010x} has no turn-back marker "
                "(undeliverable)")
    return moves


def rotate_header(header: int) -> int:
    """Rotate the header left by two bits (done by each router)."""
    header &= _HEADER_MASK
    return ((header << 2) | (header >> 30)) & _HEADER_MASK


def header_direction(header: int) -> Direction:
    """The 2-bit direction code in the header MSBs."""
    return Direction((header >> 30) & 0x3)


def walk_route(src: Coord, header: Union[int, Sequence[int]],
               max_hops: Optional[int] = None) -> Tuple[Coord, int]:
    """Simulate the header walk: (delivery tile, hops taken).

    ``header`` is a single 32-bit word or a route-word chain.  Mirrors
    the router logic: at each tile, if the header directs back the way
    the packet came, the packet is delivered locally — unless extension
    words remain, in which case the spent word is stripped and the next
    word routes the same hop decision.

    ``max_hops`` defaults to the chain's actual capacity
    (``MAX_HOPS * n_words``), so a malformed header errors at the tile
    where a well-formed one could no longer deliver, instead of walking
    off the route first.
    """
    words = as_route_words(header)
    if max_hops is None:
        max_hops = MAX_HOPS * len(words)
    here = src
    came_from = None  # direction code that would send it back
    hops = 0
    index = 0
    current = words[0]
    while True:
        direction = header_direction(current)
        if came_from is not None and direction == came_from:
            if index + 1 < len(words):
                # Spent route word: promote the next extension word and
                # re-decide this hop (routers do the same double decode).
                index += 1
                current = words[index]
                continue
            return here, hops
        if hops >= max_hops:
            raise RouteError(f"route from {src} did not deliver within "
                             f"{max_hops} hops")
        here = here.step(direction)
        came_from = direction.opposite
        current = rotate_header(current)
        hops += 1


def reverse_moves(moves: List[Direction]) -> List[Direction]:
    """The return path of a route (reversed, each move opposed)."""
    return [move.opposite for move in reversed(moves)]


def route_for(src: Coord, dst: Coord) -> int:
    """Single-word header for the XY route from ``src`` to ``dst``
    (routes of at most :data:`MAX_HOPS` hops)."""
    return encode_source_route(xy_moves(src, dst))


def route_words_for(src: Coord, dst: Coord) -> List[int]:
    """Route-word chain for the XY route from ``src`` to ``dst``; one
    word for routes of at most :data:`MAX_HOPS` hops, chained beyond."""
    return encode_route(xy_moves(src, dst))
