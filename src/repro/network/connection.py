"""GS connections: allocation, programming and lifecycle.

A connection is a reserved sequence of independently buffered VCs from a
source NA interface to a destination NA interface (paper Section 3).  The
:class:`ConnectionManager` computes the XY path, allocates one free VC on
every link (admission control), and programs each router's connection
table — via real BE config packets through the network, exactly as the
paper describes ("GS connections are set up by programming these into the
GS router via the BE router"), or instantly for unit tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..core.connection_table import TableEntry
from ..core.programming import OP_SETUP, OP_TEARDOWN, pack_command
from ..network.packet import GsFlit, Steering, encode_steering
from ..network.routing import route_words_for
from ..network.topology import Coord, Direction
from ..sim.kernel import Event, Simulator

__all__ = ["AdmissionError", "GsSink", "Connection", "ConnectionManager"]

#: How long a failed ack-less programming attempt waits before its
#: resources are reclaimed — long enough for its in-flight config
#: packets to land at the loads a recovery is plausible under.  With
#: acks (the default) recovery paces itself on the acks instead.
RECOVERY_GRACE_NS = 5000.0


class AdmissionError(Exception):
    """The requested connection cannot be accommodated.

    Raised when some resource along the chosen path is exhausted — a
    link's VC pool, an endpoint's local GS interfaces, or (for adaptive
    strategies) every residual path between the endpoints.  ``resource``
    names the exhausted pool (e.g. ``("vc", coord, direction)``) and
    ``snapshot`` carries the residual-capacity summary of the mesh at
    rejection time (see
    :meth:`repro.alloc.capacity.ResidualCapacity.snapshot`), so callers
    can see *why* admission failed, not just that it did.
    """

    def __init__(self, message: str, *, resource: tuple = None,
                 snapshot=None):
        super().__init__(message)
        self.resource = resource
        self._snapshot = snapshot

    @property
    def snapshot(self):
        """The residual snapshot at rejection time.  The raiser passes
        a thunk over counts it captured when admission failed (see
        :meth:`~repro.alloc.capacity.ResidualCapacity
        .rejection_snapshot`), so the summary formatting only runs for
        errors somebody actually inspects — batch allocators swallow
        rejections by the dozen — while the data stays pinned to the
        moment of rejection however the pools move afterwards."""
        if callable(self._snapshot):
            self._snapshot = self._snapshot()
        return self._snapshot


class GsSink:
    """Records flits arriving at the destination NA of a connection."""

    def __init__(self):
        self.count = 0
        self.payloads: List[int] = []
        self.latencies: List[float] = []
        self.first_arrival = float("inf")
        self.last_arrival = -float("inf")

    def record(self, flit: GsFlit, now: float) -> None:
        self.count += 1
        self.payloads.append(flit.payload)
        if flit.inject_time >= 0:
            self.latencies.append(now - flit.inject_time)
        self.first_arrival = min(self.first_arrival, now)
        self.last_arrival = max(self.last_arrival, now)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else float("nan")

    def throughput_flits_per_ns(self) -> float:
        """Arrival rate over the sink's active window."""
        span = self.last_arrival - self.first_arrival
        if self.count < 2 or span <= 0:
            return 0.0
        return (self.count - 1) / span


@dataclass
class Hop:
    """One reserved VC buffer: at ``coord``'s ``out_dir`` port, index ``vc``."""

    coord: Coord
    out_dir: Direction
    vc: int


@dataclass
class Connection:
    """Handle for an open (or opening) GS connection."""

    connection_id: int
    src: Coord
    dst: Coord
    src_iface: int
    dst_iface: int
    hops: List[Hop]
    manager: "ConnectionManager"
    sink: GsSink = field(default_factory=GsSink)
    state: str = "opening"
    sent_count: int = 0

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    def send(self, payload: int, last: bool = False) -> GsFlit:
        """Queue one flit at the source NA (application side)."""
        if self.state != "open":
            raise RuntimeError(f"connection {self.connection_id} is "
                               f"{self.state}, not open")
        flit = GsFlit(payload=payload, last=last, seq=self.sent_count)
        self.sent_count += 1
        na = self.manager.network.adapters[self.src]
        na.gs_send(self.src_iface, flit)
        return flit

    def send_message(self, payloads: List[int]) -> None:
        """Queue a burst, marking the final flit with the tail bit."""
        for index, payload in enumerate(payloads):
            self.send(payload, last=(index == len(payloads) - 1))


@dataclass
class _ProgramProgress:
    """How far a :meth:`ConnectionManager._program` pass got before it
    failed: the table writes whose config packet entered the BE
    network (write index, plus the pending-ack event when acks are
    on).  Everything else — the source router's synchronous local
    write, writes never reached — has nothing in flight, which is
    exactly the split :meth:`ConnectionManager._recover` needs to
    reclaim resources without racing late packets."""

    sent: List[Tuple[int, Optional[Event]]] = field(default_factory=list)


class ConnectionManager:
    """Allocates VCs and programs connections into the routers.

    *Which* path a connection takes (and whether it is admitted at all)
    is a pluggable policy from :mod:`repro.alloc`: the default ``xy``
    strategy reproduces the historical hardwired behaviour
    decision-for-decision, while ``min-adaptive``/``ripup`` search the
    residual-capacity mesh.  Install one with ``manager.allocator =
    "min-adaptive"`` (name or instance).
    """

    def __init__(self, network, allocator="xy"):
        self.network = network
        self.sim: Simulator = network.sim
        self._ids = itertools.count(1)
        self._seqs = itertools.count(1)
        # Free VC pools per (router coord, output direction).
        vcs = network.config.vcs_per_port
        self.vc_pools: Dict[Tuple[Coord, Direction], set] = {}
        for coord, direction in network.link_keys():
            self.vc_pools[(coord, direction)] = set(range(vcs))
        ifaces = network.config.local_gs_interfaces
        self.tx_pools: Dict[Coord, set] = {
            coord: set(range(ifaces)) for coord in network.mesh.tiles()}
        self.rx_pools: Dict[Coord, set] = {
            coord: set(range(ifaces)) for coord in network.mesh.tiles()}
        self.connections: Dict[int, Connection] = {}
        self._pending_acks: Dict[int, Event] = {}
        self._allocator = None
        self.allocator = allocator
        for adapter in network.adapters.values():
            adapter.on_config_ack(self._ack_arrived)

    # -- allocation ------------------------------------------------------------

    @property
    def allocator(self):
        """The installed :class:`~repro.alloc.strategies.Allocator`."""
        return self._allocator

    @allocator.setter
    def allocator(self, value) -> None:
        # Imported lazily: repro.alloc sits above the network layer (it
        # builds on topology/routing/qos) and importing it at module
        # scope here would be circular.
        from ..alloc import get_allocator
        self._allocator = get_allocator(value)

    def capacity(self):
        """The live residual-capacity view over this manager's pools."""
        from ..alloc.capacity import ResidualCapacity
        return ResidualCapacity.from_manager(self)

    def _allocate(self, src: Coord, dst: Coord) -> Tuple[int, int, List[Hop]]:
        """Reserve a path via the installed strategy; raises
        :class:`AdmissionError` (pools untouched) when full."""
        return self._allocator.allocate(self.capacity(), src, dst)

    def _free(self, conn: Connection) -> None:
        for hop in conn.hops:
            self.vc_pools[(hop.coord, hop.out_dir)].add(hop.vc)
        self.tx_pools[conn.src].add(conn.src_iface)
        self.rx_pools[conn.dst].add(conn.dst_iface)

    # -- table entry construction ------------------------------------------------

    def _entries(self, conn: Connection) -> List[Tuple[Coord, Direction, int,
                                                       TableEntry]]:
        """(router coord, out_port, vc, entry) for every table write."""
        cfg = self.network.config
        writes = []
        hops = conn.hops
        for index, hop in enumerate(hops):
            nxt = hop.coord.step(hop.out_dir)
            in_dir_next = hop.out_dir.opposite
            if index + 1 < len(hops):
                steer = encode_steering(
                    in_dir_next, hops[index + 1].out_dir,
                    hops[index + 1].vc, vcs_per_port=cfg.vcs_per_port,
                    local_interfaces=cfg.local_gs_interfaces)
            else:
                steer = encode_steering(
                    in_dir_next, Direction.LOCAL, conn.dst_iface,
                    vcs_per_port=cfg.vcs_per_port,
                    local_interfaces=cfg.local_gs_interfaces)
            if index == 0:
                unlock_dir, unlock_vc = Direction.LOCAL, conn.src_iface
            else:
                unlock_dir = hops[index - 1].out_dir.opposite
                unlock_vc = hops[index - 1].vc
            writes.append((hop.coord, hop.out_dir, hop.vc,
                           TableEntry(conn.connection_id, steer,
                                      unlock_dir, unlock_vc)))
        # Final router: the VC buffer at the local output port.
        last = hops[-1]
        writes.append((conn.dst, Direction.LOCAL, conn.dst_iface,
                       TableEntry(conn.connection_id, None,
                                  last.out_dir.opposite, last.vc)))
        return writes

    def _source_steering(self, conn: Connection) -> Steering:
        cfg = self.network.config
        first = conn.hops[0]
        return encode_steering(Direction.LOCAL, first.out_dir, first.vc,
                               vcs_per_port=cfg.vcs_per_port,
                               local_interfaces=cfg.local_gs_interfaces)

    def _bind_endpoints(self, conn: Connection) -> None:
        src_na = self.network.adapters[conn.src]
        dst_na = self.network.adapters[conn.dst]
        src_na.bind_tx(conn.src_iface, self._source_steering(conn),
                       conn.connection_id)
        dst_na.bind_rx(conn.dst_iface, conn.sink.record)

    # -- lifecycle ------------------------------------------------------------------

    def open_instant(self, src: Coord, dst: Coord) -> Connection:
        """Reserve and program a connection with zero-time table writes.

        Bypasses the BE network — for unit tests and experiments that are
        not about setup cost."""
        src_iface, dst_iface, hops = self._allocate(src, dst)
        conn = Connection(next(self._ids), src, dst, src_iface, dst_iface,
                          hops, self)
        for coord, out_port, vc, entry in self._entries(conn):
            self.network.routers[coord].table.program(out_port, vc, entry)
        self._bind_endpoints(conn)
        conn.state = "open"
        self.connections[conn.connection_id] = conn
        return conn

    def open(self, src: Coord, dst: Coord,
             want_ack: bool = True) -> Generator:
        """Sub-generator: open a connection by sending config packets via
        the BE network from the source NA; completes when all routers have
        acknowledged.  Returns the open :class:`Connection`."""
        src_iface, dst_iface, hops = self._allocate(src, dst)
        conn = Connection(next(self._ids), src, dst, src_iface, dst_iface,
                          hops, self)
        progress = _ProgramProgress()
        try:
            yield from self._program(conn, OP_SETUP, want_ack, progress)
        except Exception:
            # Programming failed: reclaim the reservations without
            # racing the config packets already travelling the BE
            # network (see _recover), so the failure leaks neither
            # VCs/interfaces nor stale table entries that would crash a
            # later open reusing the freed VCs.
            self._recover(conn, progress)
            raise
        self._bind_endpoints(conn)
        conn.state = "open"
        self.connections[conn.connection_id] = conn
        return conn

    def close(self, conn: Connection, want_ack: bool = True) -> Generator:
        """Sub-generator: tear the connection down and free its VCs.

        The caller must have stopped the source; in-flight flits should be
        drained before closing (checked via router occupancy)."""
        if conn.state != "open":
            raise RuntimeError(f"connection {conn.connection_id} is "
                               f"{conn.state}")
        conn.state = "closing"
        src_na = self.network.adapters[conn.src]
        src_na.unbind_tx(conn.src_iface)
        self.network.adapters[conn.dst].unbind_rx(conn.dst_iface)
        progress = _ProgramProgress()
        try:
            yield from self._program(conn, OP_TEARDOWN, want_ack, progress)
        except Exception:
            # A failed teardown must not leak the reservations: the
            # connection is unusable either way (endpoints unbound).
            # _recover scrubs the table entries its undelivered
            # teardown packets would have cleared and returns the VCs
            # and interfaces — but only once nothing of this
            # connection's programming is still in flight, so the
            # freed VCs are genuinely reusable by a later open instead
            # of racing a late config packet.
            self._recover(conn, progress)
            conn.state = "error"
            self.connections.pop(conn.connection_id, None)
            raise
        self._free(conn)
        conn.state = "closed"
        del self.connections[conn.connection_id]

    def _program(self, conn: Connection, opcode: int, want_ack: bool,
                 progress: Optional["_ProgramProgress"] = None) -> Generator:
        src_na = self.network.adapters[conn.src]
        ack_events: List[Event] = []
        for index, (coord, out_port, vc, entry) in \
                enumerate(self._entries(conn)):
            seq = next(self._seqs) & 0xFFF
            ack_route = None
            if want_ack and coord != conn.src:
                ack_route = route_words_for(coord, conn.src)
            words = pack_command(
                opcode, seq, out_port=out_port, out_vc=vc,
                steering=entry.steering, unlock_dir=entry.unlock_dir,
                unlock_vc=entry.unlock_vc,
                connection_id=conn.connection_id, ack_route=ack_route)
            if coord == conn.src:
                # The own router is programmed through the local port
                # extension directly (a zero-hop BE route is
                # impossible) — synchronous, nothing left in flight.
                self.network.routers[coord].programming.execute(words)
            else:
                event = None
                if ack_route is not None:
                    event = Event(self.sim)
                    self._pending_acks[seq] = event
                    ack_events.append(event)
                try:
                    yield from src_na.send_be(coord, words)
                except BaseException:
                    # This write's packet never entered the network:
                    # drop its ack registration (the ack can never
                    # arrive).  Earlier writes' registrations stay —
                    # their packets are in flight and their acks both
                    # clean themselves up on arrival and pace recovery.
                    if event is not None:
                        self._pending_acks.pop(seq, None)
                    raise
                if progress is not None:
                    progress.sent.append((index, event))
        for event in ack_events:
            yield event

    def _scrub_entry(self, conn: Connection, coord: Coord,
                     out_port: Direction, vc: int) -> None:
        """Zero-time removal of one of ``conn``'s table rows, if it is
        still present and still owned by ``conn`` — the model's
        operator-reset of a router whose config packet could not be
        (or was never) delivered."""
        table = self.network.routers[coord].table
        entry = table.lookup(out_port, vc)
        if entry is not None and entry.connection_id == conn.connection_id:
            table.clear(out_port, vc)

    def _recover(self, conn: Connection,
                 progress: "_ProgramProgress") -> None:
        """Reclaim a connection whose programming failed partway.

        Writes whose config packet never entered the network (and the
        source router's synchronous local write) are scrubbed
        immediately — nothing can race them.  Writes whose packet *is*
        in flight must land first: scrubbing under them would crash a
        late teardown (clearing an already-cleared slot) and freeing
        their VCs would let a new connection collide with a late
        setup.  So the final scrub-and-free runs when the last
        outstanding ack arrives (want_ack programming paces itself),
        or after :data:`RECOVERY_GRACE_NS` for ack-less programming.
        Until then the resources stay reserved: a concurrent open sees
        AdmissionError, never a corrupted table.
        """
        writes = self._entries(conn)
        sent = dict(progress.sent)
        for index, (coord, out_port, vc, _entry) in enumerate(writes):
            if index not in sent:
                self._scrub_entry(conn, coord, out_port, vc)

        def finish(_event=None) -> None:
            for index in sent:
                coord, out_port, vc, _entry = writes[index]
                self._scrub_entry(conn, coord, out_port, vc)
            self._free(conn)

        if not sent:
            finish()
            return
        pending = [event for event in sent.values()
                   if event is not None and not event.triggered]
        if all(event is not None for event in sent.values()):
            remaining = len(pending)
            if remaining == 0:
                finish()
                return
            counter = {"n": remaining}

            def one_done(_event) -> None:
                counter["n"] -= 1
                if counter["n"] == 0:
                    finish()

            for event in pending:
                event.add_callback(one_done)
        else:
            # No ack signal to pace on (want_ack=False): reclaim after
            # a grace period that comfortably covers config-packet
            # delivery at the loads a recovery is plausible under.
            self.sim.defer(RECOVERY_GRACE_NS, finish)

    def _ack_arrived(self, seq: int) -> None:
        event = self._pending_acks.pop(seq, None)
        if event is not None and not event.triggered:
            event.succeed()
