"""GS connections: allocation, programming and lifecycle.

A connection is a reserved sequence of independently buffered VCs from a
source NA interface to a destination NA interface (paper Section 3).  The
:class:`ConnectionManager` computes the XY path, allocates one free VC on
every link (admission control), and programs each router's connection
table — via real BE config packets through the network, exactly as the
paper describes ("GS connections are set up by programming these into the
GS router via the BE router"), or instantly for unit tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Tuple

from ..core.connection_table import TableEntry
from ..core.programming import OP_SETUP, OP_TEARDOWN, pack_command
from ..network.packet import GsFlit, Steering, encode_steering
from ..network.routing import max_route_hops, route_words_for, xy_moves
from ..network.topology import Coord, Direction
from ..sim.kernel import Event, Simulator

__all__ = ["AdmissionError", "GsSink", "Connection", "ConnectionManager"]


class AdmissionError(Exception):
    """No free VC (or local interface) on some hop of the requested path."""


class GsSink:
    """Records flits arriving at the destination NA of a connection."""

    def __init__(self):
        self.count = 0
        self.payloads: List[int] = []
        self.latencies: List[float] = []
        self.first_arrival = float("inf")
        self.last_arrival = -float("inf")

    def record(self, flit: GsFlit, now: float) -> None:
        self.count += 1
        self.payloads.append(flit.payload)
        if flit.inject_time >= 0:
            self.latencies.append(now - flit.inject_time)
        self.first_arrival = min(self.first_arrival, now)
        self.last_arrival = max(self.last_arrival, now)

    @property
    def mean_latency(self) -> float:
        if not self.latencies:
            return float("nan")
        return sum(self.latencies) / len(self.latencies)

    @property
    def max_latency(self) -> float:
        return max(self.latencies) if self.latencies else float("nan")

    def throughput_flits_per_ns(self) -> float:
        """Arrival rate over the sink's active window."""
        span = self.last_arrival - self.first_arrival
        if self.count < 2 or span <= 0:
            return 0.0
        return (self.count - 1) / span


@dataclass
class Hop:
    """One reserved VC buffer: at ``coord``'s ``out_dir`` port, index ``vc``."""

    coord: Coord
    out_dir: Direction
    vc: int


@dataclass
class Connection:
    """Handle for an open (or opening) GS connection."""

    connection_id: int
    src: Coord
    dst: Coord
    src_iface: int
    dst_iface: int
    hops: List[Hop]
    manager: "ConnectionManager"
    sink: GsSink = field(default_factory=GsSink)
    state: str = "opening"
    sent_count: int = 0

    @property
    def n_hops(self) -> int:
        return len(self.hops)

    def send(self, payload: int, last: bool = False) -> GsFlit:
        """Queue one flit at the source NA (application side)."""
        if self.state != "open":
            raise RuntimeError(f"connection {self.connection_id} is "
                               f"{self.state}, not open")
        flit = GsFlit(payload=payload, last=last, seq=self.sent_count)
        self.sent_count += 1
        na = self.manager.network.adapters[self.src]
        na.gs_send(self.src_iface, flit)
        return flit

    def send_message(self, payloads: List[int]) -> None:
        """Queue a burst, marking the final flit with the tail bit."""
        for index, payload in enumerate(payloads):
            self.send(payload, last=(index == len(payloads) - 1))


class ConnectionManager:
    """Allocates VCs and programs connections into the routers."""

    def __init__(self, network):
        self.network = network
        self.sim: Simulator = network.sim
        self._ids = itertools.count(1)
        self._seqs = itertools.count(1)
        # Free VC pools per (router coord, output direction).
        vcs = network.config.vcs_per_port
        self.vc_pools: Dict[Tuple[Coord, Direction], set] = {}
        for coord, direction in network.link_keys():
            self.vc_pools[(coord, direction)] = set(range(vcs))
        ifaces = network.config.local_gs_interfaces
        self.tx_pools: Dict[Coord, set] = {
            coord: set(range(ifaces)) for coord in network.mesh.tiles()}
        self.rx_pools: Dict[Coord, set] = {
            coord: set(range(ifaces)) for coord in network.mesh.tiles()}
        self.connections: Dict[int, Connection] = {}
        self._pending_acks: Dict[int, Event] = {}
        for adapter in network.adapters.values():
            adapter.on_config_ack(self._ack_arrived)

    # -- allocation ------------------------------------------------------------

    def _allocate(self, src: Coord, dst: Coord) -> Tuple[int, int, List[Hop]]:
        """Reserve a path; raises :class:`AdmissionError` when full."""
        if src == dst:
            raise AdmissionError(
                "GS connections terminate on different local ports "
                "(paper Section 3)")
        moves = xy_moves(src, dst)
        # The admission hop cap is whatever the route encoder can express
        # in a chained header — the programming packets (and their acks)
        # travel on exactly those headers.
        if len(moves) > max_route_hops():
            raise AdmissionError(
                f"path of {len(moves)} hops exceeds the "
                f"{max_route_hops()}-hop capacity of the chained "
                "source-route headers the programming packets travel on")
        if not self.tx_pools[src]:
            raise AdmissionError(f"no free GS source interface at {src}")
        if not self.rx_pools[dst]:
            raise AdmissionError(f"no free GS sink interface at {dst}")
        hops: List[Hop] = []
        taken: List[Tuple[Coord, Direction, int]] = []
        here = src
        try:
            for move in moves:
                pool = self.vc_pools[(here, move)]
                if not pool:
                    raise AdmissionError(
                        f"no free VC on link {here}->{move.name}")
                vc = min(pool)
                pool.discard(vc)
                taken.append((here, move, vc))
                hops.append(Hop(here, move, vc))
                here = here.step(move)
        except AdmissionError:
            for coord, direction, vc in taken:
                self.vc_pools[(coord, direction)].add(vc)
            raise
        src_iface = min(self.tx_pools[src])
        dst_iface = min(self.rx_pools[dst])
        self.tx_pools[src].discard(src_iface)
        self.rx_pools[dst].discard(dst_iface)
        return src_iface, dst_iface, hops

    def _free(self, conn: Connection) -> None:
        for hop in conn.hops:
            self.vc_pools[(hop.coord, hop.out_dir)].add(hop.vc)
        self.tx_pools[conn.src].add(conn.src_iface)
        self.rx_pools[conn.dst].add(conn.dst_iface)

    # -- table entry construction ------------------------------------------------

    def _entries(self, conn: Connection) -> List[Tuple[Coord, Direction, int,
                                                       TableEntry]]:
        """(router coord, out_port, vc, entry) for every table write."""
        cfg = self.network.config
        writes = []
        hops = conn.hops
        for index, hop in enumerate(hops):
            nxt = hop.coord.step(hop.out_dir)
            in_dir_next = hop.out_dir.opposite
            if index + 1 < len(hops):
                steer = encode_steering(
                    in_dir_next, hops[index + 1].out_dir,
                    hops[index + 1].vc, vcs_per_port=cfg.vcs_per_port,
                    local_interfaces=cfg.local_gs_interfaces)
            else:
                steer = encode_steering(
                    in_dir_next, Direction.LOCAL, conn.dst_iface,
                    vcs_per_port=cfg.vcs_per_port,
                    local_interfaces=cfg.local_gs_interfaces)
            if index == 0:
                unlock_dir, unlock_vc = Direction.LOCAL, conn.src_iface
            else:
                unlock_dir = hops[index - 1].out_dir.opposite
                unlock_vc = hops[index - 1].vc
            writes.append((hop.coord, hop.out_dir, hop.vc,
                           TableEntry(conn.connection_id, steer,
                                      unlock_dir, unlock_vc)))
        # Final router: the VC buffer at the local output port.
        last = hops[-1]
        writes.append((conn.dst, Direction.LOCAL, conn.dst_iface,
                       TableEntry(conn.connection_id, None,
                                  last.out_dir.opposite, last.vc)))
        return writes

    def _source_steering(self, conn: Connection) -> Steering:
        cfg = self.network.config
        first = conn.hops[0]
        return encode_steering(Direction.LOCAL, first.out_dir, first.vc,
                               vcs_per_port=cfg.vcs_per_port,
                               local_interfaces=cfg.local_gs_interfaces)

    def _bind_endpoints(self, conn: Connection) -> None:
        src_na = self.network.adapters[conn.src]
        dst_na = self.network.adapters[conn.dst]
        src_na.bind_tx(conn.src_iface, self._source_steering(conn),
                       conn.connection_id)
        dst_na.bind_rx(conn.dst_iface, conn.sink.record)

    # -- lifecycle ------------------------------------------------------------------

    def open_instant(self, src: Coord, dst: Coord) -> Connection:
        """Reserve and program a connection with zero-time table writes.

        Bypasses the BE network — for unit tests and experiments that are
        not about setup cost."""
        src_iface, dst_iface, hops = self._allocate(src, dst)
        conn = Connection(next(self._ids), src, dst, src_iface, dst_iface,
                          hops, self)
        for coord, out_port, vc, entry in self._entries(conn):
            self.network.routers[coord].table.program(out_port, vc, entry)
        self._bind_endpoints(conn)
        conn.state = "open"
        self.connections[conn.connection_id] = conn
        return conn

    def open(self, src: Coord, dst: Coord,
             want_ack: bool = True) -> Generator:
        """Sub-generator: open a connection by sending config packets via
        the BE network from the source NA; completes when all routers have
        acknowledged.  Returns the open :class:`Connection`."""
        src_iface, dst_iface, hops = self._allocate(src, dst)
        conn = Connection(next(self._ids), src, dst, src_iface, dst_iface,
                          hops, self)
        try:
            yield from self._program(conn, OP_SETUP, want_ack)
        except Exception:
            # Programming failed: return the reservations so the failure
            # does not leak VCs or local interfaces.
            self._free(conn)
            raise
        self._bind_endpoints(conn)
        conn.state = "open"
        self.connections[conn.connection_id] = conn
        return conn

    def close(self, conn: Connection, want_ack: bool = True) -> Generator:
        """Sub-generator: tear the connection down and free its VCs.

        The caller must have stopped the source; in-flight flits should be
        drained before closing (checked via router occupancy)."""
        if conn.state != "open":
            raise RuntimeError(f"connection {conn.connection_id} is "
                               f"{conn.state}")
        conn.state = "closing"
        src_na = self.network.adapters[conn.src]
        src_na.unbind_tx(conn.src_iface)
        self.network.adapters[conn.dst].unbind_rx(conn.dst_iface)
        yield from self._program(conn, OP_TEARDOWN, want_ack)
        self._free(conn)
        conn.state = "closed"
        del self.connections[conn.connection_id]

    def _program(self, conn: Connection, opcode: int,
                 want_ack: bool) -> Generator:
        src_na = self.network.adapters[conn.src]
        ack_events: List[Event] = []
        for coord, out_port, vc, entry in self._entries(conn):
            seq = next(self._seqs) & 0xFFF
            ack_route = None
            if want_ack and coord != conn.src:
                ack_route = route_words_for(coord, conn.src)
            words = pack_command(
                opcode, seq, out_port=out_port, out_vc=vc,
                steering=entry.steering, unlock_dir=entry.unlock_dir,
                unlock_vc=entry.unlock_vc,
                connection_id=conn.connection_id, ack_route=ack_route)
            if coord == conn.src:
                # The own router is programmed through the local port
                # extension directly (a zero-hop BE route is impossible).
                self.network.routers[coord].programming.execute(words)
            else:
                if ack_route is not None:
                    event = Event(self.sim)
                    self._pending_acks[seq] = event
                    ack_events.append(event)
                yield from src_na.send_be(coord, words)
        for event in ack_events:
            yield event

    def _ack_arrived(self, seq: int) -> None:
        event = self._pending_acks.pop(seq, None)
        if event is not None and not event.triggered:
            event.succeed()
