"""NoC substrate: topology, packets, routing, links, adapters, network.

Only the dependency-free leaf modules are imported eagerly; the heavier
modules (adapter, connection, network, ocp) are exposed lazily (PEP 562)
because they import from :mod:`repro.core`, which itself uses the leaf
modules here — eager imports would create a package-init cycle.
"""

from importlib import import_module

from .topology import (
    Coord,
    Direction,
    GraphLink,
    Mesh,
    NETWORK_DIRECTIONS,
    Port,
    Topology,
    build_topology,
    register_topology,
    topology_names,
)
from .packet import (
    BeFlit,
    BePacket,
    FLIT_DATA_BITS,
    GsFlit,
    LINK_FLIT_BITS,
    Steering,
    SteeringError,
    allowed_output_ports,
    decode_steering,
    encode_steering,
    make_be_packet,
)
from .routing import (
    MAX_HOPS,
    MAX_ROUTE_WORDS,
    RouteError,
    decode_route,
    encode_route,
    encode_source_route,
    header_direction,
    max_route_hops,
    reverse_moves,
    rotate_header,
    route_for,
    route_words_for,
    walk_route,
    xy_moves,
)

_LAZY = {
    "AdmissionError": ".connection",
    "HierarchicalRingTopology": ".fabrics",
    "RingTopology": ".fabrics",
    "RouterlessTopology": ".fabrics",
    "ClockDomain": ".adapter",
    "Connection": ".connection",
    "ConnectionManager": ".connection",
    "GsSink": ".connection",
    "GsTxEndpoint": ".adapter",
    "LOCAL_LINK_MM": ".link",
    "Link": ".link",
    "LocalLink": ".link",
    "MangoNetwork": ".network",
    "NetworkAdapter": ".adapter",
    "OcpError": ".ocp",
    "OcpMaster": ".ocp",
    "OcpMemorySlave": ".ocp",
    "OcpResponse": ".ocp",
}

__all__ = [
    "BeFlit",
    "BePacket",
    "Coord",
    "Direction",
    "FLIT_DATA_BITS",
    "GraphLink",
    "GsFlit",
    "LINK_FLIT_BITS",
    "MAX_HOPS",
    "MAX_ROUTE_WORDS",
    "Mesh",
    "NETWORK_DIRECTIONS",
    "Port",
    "RouteError",
    "Steering",
    "SteeringError",
    "Topology",
    "allowed_output_ports",
    "build_topology",
    "decode_route",
    "decode_steering",
    "encode_route",
    "encode_source_route",
    "encode_steering",
    "header_direction",
    "make_be_packet",
    "max_route_hops",
    "register_topology",
    "reverse_moves",
    "rotate_header",
    "route_for",
    "route_words_for",
    "topology_names",
    "walk_route",
    "xy_moves",
] + sorted(_LAZY)


def __getattr__(name: str):
    target = _LAZY.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = import_module(target, __name__)
    return getattr(module, name)
