"""Physical links between routers, and the local link to the NA.

A link bundles, in one direction: the 39 flit wires (body + steering), and
in the reverse direction one unlock wire per GS VC (the share-based VC
control channel) plus one credit wire per BE channel.  Long links can be
pipelined (extra latch stages) to keep the flit rate up; the media cycle
seen by the link arbiter is then the slower of the router's link cycle and
the pipeline stage cycle.
"""

from __future__ import annotations

from typing import Optional

from ..circuits.pipeline import link_stage_parameters
from ..circuits.timing import TimingProfile
from ..network.packet import BeFlit, GsFlit, Steering
from ..network.topology import Coord, Direction, LinkSpec
from ..sim.kernel import Simulator

__all__ = ["Link", "LocalLink", "LOCAL_LINK_MM"]

#: Wire length between a router and its tile's network adapter.
LOCAL_LINK_MM = 0.3


class Link:
    """A unidirectional router-to-router link."""

    def __init__(self, sim: Simulator, spec: LinkSpec, src_router,
                 dst_router):
        self.sim = sim
        self.spec = spec
        self.src_router = src_router
        self.dst_router = dst_router
        self.direction = spec.direction
        self.in_dir = spec.direction.opposite
        profile: TimingProfile = src_router.config.timing
        self.profile = profile
        d = profile.delays

        extra_latches = (spec.stages - 1) * d.latch_capture
        self.forward_gs_ns = profile.ns(
            d.forward_path(spec.length_mm) + extra_latches)
        # BE flits stop after the split stage (3 steering bits stripped)
        # and land in the BE input buffer instead of a 4x4 switch.
        self.forward_be_ns = profile.ns(
            d.forward_path(spec.length_mm) + extra_latches
            - d.switch_stage - d.latch_capture + d.be_buffer_stage)
        self.unlock_ns = profile.ns(d.unlock_path(spec.length_mm))
        self.credit_ns = profile.ns(
            d.credit_return + d.wire_per_mm * spec.length_mm)

        # A pipelined link must not throttle the router; if under-staged,
        # the stage cycle dominates the media cycle.
        _forward, stage_cycle = link_stage_parameters(
            profile, spec.length_mm, spec.stages)
        self.media_cycle_ns = max(profile.link_cycle_ns, stage_cycle)

        self.gs_flits = 0
        self.be_flits = 0
        self.unlocks = 0

        # Trace emit point: hop spans (inject -> per-hop link occupancy
        # -> eject) go through the source router's tracer, a no-op
        # NULL_TRACER unless the run opted in.
        self.tracer = src_router.tracer
        self.label = f"{src_router.name}>{spec.direction.name}"

        # Every flit crosses a link (forward) and toggles a reverse wire,
        # so these handlers are prebound once instead of looked up (and
        # wrapped in a closure) per transfer.
        self._deliver_gs = dst_router.accept_gs_flit
        self._deliver_be = dst_router.accept_be_flit
        self._src_port = src_router.output_ports[spec.direction]

    @property
    def src_port(self):
        return self._src_port

    # -- forward wires -------------------------------------------------------

    def transmit_gs(self, flit: GsFlit, steering: Steering) -> None:
        """Carry a granted GS flit (with appended steering bits) to the
        next router's switching module."""
        self.gs_flits += 1
        if self.tracer.enabled:
            # Flit tags are run-relative (connection id + payload), never
            # the process-global flit_id, so traces from repeated runs
            # compare byte-identical.
            self.tracer.emit(self.sim.now, self.label, "hop",
                             flit=f"c{flit.connection_id}.{flit.payload}",
                             cls="gs", dur_ns=self.forward_gs_ns)
        self.sim.defer(self.forward_gs_ns, self._deliver_gs, self.in_dir,
                       steering, flit)

    def transmit_be(self, flit: BeFlit) -> None:
        self.be_flits += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.label, "hop",
                             flit=f"be{flit.vc}.{flit.word}", cls="be",
                             dur_ns=self.forward_be_ns)
        self.sim.defer(self.forward_be_ns, self._deliver_be, self.in_dir,
                       flit)

    # -- reverse wires -------------------------------------------------------

    def send_unlock(self, vc: int) -> None:
        """Unlock toggle from the downstream VC control module back to the
        sharebox of VC ``vc`` at the upstream output port."""
        self.unlocks += 1
        self.sim.defer(self.unlock_ns, self._src_port.sharebox_release, vc)

    def return_be_credit(self, vc: int) -> None:
        self.sim.defer(self.credit_ns, self._src_port.be_credit_return, vc)


class LocalLink:
    """The NA-to-router local port wiring.

    GS injection interfaces are dedicated channels (no arbitration); each
    carries its own sharebox at the NA side, unlocked through this link by
    the router's VC control module.  The BE interface reuses the router's
    local injection path; its flow control is the input buffer capacity
    (blocking put ≡ zero-latency credits, see DESIGN.md).
    """

    def __init__(self, sim: Simulator, router, length_mm: float = LOCAL_LINK_MM):
        self.sim = sim
        self.router = router
        self.length_mm = length_mm
        profile: TimingProfile = router.config.timing
        self.profile = profile
        d = profile.delays
        self.forward_gs_ns = profile.ns(d.forward_path(length_mm))
        self.unlock_ns = profile.ns(d.unlock_path(length_mm))
        self.adapter = None
        self.gs_flits = 0
        self.tracer = router.tracer
        self.label = f"{router.name}<NA"
        router.attach_local_link(self)

    def attach_adapter(self, adapter) -> None:
        self.adapter = adapter

    def transmit_inject(self, steering: Steering, flit: GsFlit) -> None:
        """NA -> router: a GS flit enters the switching module on the
        LOCAL input."""
        self.gs_flits += 1
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, self.label, "inject",
                             flit=f"c{flit.connection_id}.{flit.payload}",
                             cls="gs", dur_ns=self.forward_gs_ns)
        self.sim.defer(self.forward_gs_ns, self.router.accept_gs_flit,
                       Direction.LOCAL, steering, flit)

    def send_gs_unlock(self, iface: int) -> None:
        """Router -> NA: unlock the source endpoint's sharebox."""
        if self.adapter is None:
            raise RuntimeError(
                f"{self.router.name}: GS unlock for the local port but no "
                "adapter attached")
        self.sim.defer(self.unlock_ns, self.adapter.release_tx, iface)

    def return_be_credit(self, vc: int) -> None:
        """Local BE credits are implicit in the blocking injection path."""
        self.router.counters.bump("be_local_credits")
