"""Grid topology for MANGO networks.

Routers are connected by point-to-point links in a grid-type structure
(paper Section 3), homogeneous or heterogeneous (per-link lengths and
pipelining differ).  Coordinates are ``(x, y)`` with x growing east and y
growing south; ``(0, 0)`` is the north-west corner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List, NamedTuple, Optional, Tuple

__all__ = ["Direction", "Coord", "Mesh", "NETWORK_DIRECTIONS"]


class Direction(IntEnum):
    """Router port directions; LOCAL is the port facing the tile's NA."""

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    LOCAL = 4

    @property
    def opposite(self) -> "Direction":
        if self is Direction.LOCAL:
            raise ValueError("LOCAL has no opposite direction")
        return Direction((self + 2) % 4)

    @property
    def delta(self) -> Tuple[int, int]:
        return _DELTAS[self]

    @property
    def is_network(self) -> bool:
        return self is not Direction.LOCAL


_DELTAS = {
    Direction.NORTH: (0, -1),
    Direction.EAST: (1, 0),
    Direction.SOUTH: (0, 1),
    Direction.WEST: (-1, 0),
    Direction.LOCAL: (0, 0),
}

#: The four network directions in code order (matches the 2-bit encoding).
NETWORK_DIRECTIONS = (Direction.NORTH, Direction.EAST, Direction.SOUTH,
                      Direction.WEST)


class Coord(NamedTuple):
    """Tile coordinate: x east, y south."""

    x: int
    y: int

    def step(self, direction: Direction) -> "Coord":
        dx, dy = direction.delta
        return Coord(self.x + dx, self.y + dy)

    def __str__(self) -> str:
        return f"({self.x},{self.y})"


@dataclass
class LinkSpec:
    """Physical description of one unidirectional link."""

    src: Coord
    direction: Direction
    length_mm: float
    stages: int = 1

    @property
    def dst(self) -> Coord:
        return self.src.step(self.direction)


@dataclass
class Mesh:
    """A cols x rows grid of tiles.

    ``link_length_mm`` sets the default physical length of every link;
    ``link_overrides`` allows heterogeneous grids (longer, pipelined links
    between distant tiles).
    """

    cols: int
    rows: int
    link_length_mm: float = 1.5
    link_stages: int = 1
    link_overrides: Dict[Tuple[Coord, Direction], LinkSpec] = field(
        default_factory=dict)

    def __post_init__(self):
        if self.cols < 1 or self.rows < 1:
            raise ValueError("mesh dimensions must be >= 1")
        if self.link_length_mm <= 0:
            raise ValueError("link length must be positive")

    def __contains__(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.cols and 0 <= coord.y < self.rows

    @property
    def n_tiles(self) -> int:
        return self.cols * self.rows

    def tiles(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield Coord(x, y)

    def neighbor(self, coord: Coord, direction: Direction
                 ) -> Optional[Coord]:
        """The tile across ``direction``, or None at the mesh edge."""
        if direction is Direction.LOCAL:
            return None
        nxt = coord.step(direction)
        return nxt if nxt in self else None

    def links(self) -> Iterator[LinkSpec]:
        """All unidirectional links of the mesh."""
        for coord in self.tiles():
            for direction in NETWORK_DIRECTIONS:
                if self.neighbor(coord, direction) is None:
                    continue
                override = self.link_overrides.get((coord, direction))
                if override is not None:
                    yield override
                else:
                    yield LinkSpec(coord, direction, self.link_length_mm,
                                   self.link_stages)

    def link_spec(self, coord: Coord, direction: Direction) -> LinkSpec:
        if self.neighbor(coord, direction) is None:
            raise ValueError(f"no link {direction.name} of {coord}")
        override = self.link_overrides.get((coord, direction))
        if override is not None:
            return override
        return LinkSpec(coord, direction, self.link_length_mm,
                        self.link_stages)

    def manhattan(self, a: Coord, b: Coord) -> int:
        return abs(a.x - b.x) + abs(a.y - b.y)
