"""Network topologies: the graph layer, with the grid as one instance.

Routers are connected by point-to-point links; the MANGO paper (Section
3) evaluates a grid, but nothing in the router architecture requires
one.  :class:`Topology` is the abstraction the layers above build
against — a node set (tile coordinates), per-node *ordered* ports,
directed port-to-port adjacency and per-link physical attributes
(length, pipeline stages) — plus a deterministic route function that
returns routes as **port sequences**.  :class:`Mesh` merely
instantiates it with 4-neighbour grid adjacency and dimension-ordered
XY routing; the ring and routerless fabrics live in
:mod:`repro.network.fabrics` (see ``docs/topologies.md``).

Nodes are always :class:`Coord` tiles of a ``cols x rows`` array —
every fabric wires the same tile grid, only the link graph differs —
so the spatial traffic patterns, the per-tile adapters and the
flit-hop fingerprint geometry are comparable across fabrics.

Coordinates are ``(x, y)`` with x growing east and y growing south;
``(0, 0)`` is the north-west corner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import IntEnum
from typing import (Callable, Dict, Iterator, List, NamedTuple, Optional,
                    Sequence, Tuple)

__all__ = [
    "Coord",
    "Direction",
    "GraphLink",
    "Mesh",
    "NETWORK_DIRECTIONS",
    "Port",
    "TOPOLOGIES",
    "Topology",
    "build_topology",
    "register_topology",
    "topology_names",
]


class Direction(IntEnum):
    """Router port directions; LOCAL is the port facing the tile's NA.

    On the mesh the four network directions *are* the ports (they
    satisfy the generic port protocol: hashable, ordered, ``.name``).
    """

    NORTH = 0
    EAST = 1
    SOUTH = 2
    WEST = 3
    LOCAL = 4

    @property
    def opposite(self) -> "Direction":
        if self is Direction.LOCAL:
            raise ValueError("LOCAL has no opposite direction")
        return Direction((self + 2) % 4)

    @property
    def delta(self) -> Tuple[int, int]:
        return _DELTAS[self]

    @property
    def is_network(self) -> bool:
        return self is not Direction.LOCAL


_DELTAS = {
    Direction.NORTH: (0, -1),
    Direction.EAST: (1, 0),
    Direction.SOUTH: (0, 1),
    Direction.WEST: (-1, 0),
    Direction.LOCAL: (0, 0),
}

#: The four network directions in code order (matches the 2-bit encoding).
NETWORK_DIRECTIONS = (Direction.NORTH, Direction.EAST, Direction.SOUTH,
                      Direction.WEST)


class Coord(NamedTuple):
    """Tile coordinate: x east, y south."""

    x: int
    y: int

    def step(self, direction: Direction) -> "Coord":
        dx, dy = direction.delta
        return Coord(self.x + dx, self.y + dy)

    def __str__(self) -> str:
        return f"({self.x},{self.y})"


@dataclass(frozen=True, order=True)
class Port:
    """A named output port of a node on a non-grid fabric.

    The generic counterpart of :class:`Direction`: hashable, totally
    ordered (by name) and carrying ``.name`` — the three properties the
    link maps, the deterministic searches and the flit-hop fingerprint
    rely on.  Instances with equal names are equal, so a fabric can
    reuse one ``Port("CW")`` across every node of a ring.
    """

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class LinkSpec:
    """Physical description of one unidirectional *grid* link (kept for
    the mesh's heterogeneous-link overrides; the topology-generic view
    is :class:`GraphLink`)."""

    src: Coord
    direction: Direction
    length_mm: float
    stages: int = 1

    @property
    def dst(self) -> Coord:
        return self.src.step(self.direction)


@dataclass(frozen=True)
class GraphLink:
    """One directed link of a topology graph: ``(src, port) -> dst``
    with its physical length and pipeline depth."""

    src: Coord
    port: object                 # Direction or Port
    dst: Coord
    length_mm: float
    stages: int = 1

    @property
    def key(self) -> Tuple[Coord, object]:
        """The ``(source node, output port)`` key the link maps use."""
        return (self.src, self.port)


class Topology(ABC):
    """A node set with per-node ordered ports and directed adjacency.

    The contract every layer above builds against:

    * nodes are the :class:`Coord` tiles of a ``cols x rows`` array
      (:meth:`tiles`, :meth:`__contains__`) — fabrics differ in *links*,
      not in tile placement, so spatial traffic patterns stay
      comparable;
    * :meth:`ports` lists a node's outgoing network ports in a fixed,
      deterministic order (the expansion order of route searches);
    * :meth:`port_neighbor` is the directed adjacency — which node a
      port's link reaches;
    * :meth:`graph_links` enumerates every directed link with its
      physical attributes, keyed ``(node, port)`` everywhere (link
      counter maps, VC pools, fingerprints);
    * :meth:`route_ports` is the fabric's *deterministic default route
      function*, returning the route as a port sequence (XY on the
      mesh, shortest-arc on rings, lowest-(hops, loop) on routerless).
    """

    #: Registry key (``--topology`` value / ``ScenarioSpec.topology``).
    name: str = ""

    #: True when reverse links are deliberately absent (unidirectional
    #: rings / loops); the Hypothesis invariants key off this.
    unidirectional: bool = False

    cols: int
    rows: int

    # -- node set ----------------------------------------------------------

    def __contains__(self, coord: Coord) -> bool:
        return 0 <= coord.x < self.cols and 0 <= coord.y < self.rows

    @property
    def n_tiles(self) -> int:
        return self.cols * self.rows

    def tiles(self) -> Iterator[Coord]:
        for y in range(self.rows):
            for x in range(self.cols):
                yield Coord(x, y)

    def manhattan(self, a: Coord, b: Coord) -> int:
        """Grid distance between two tiles — the *spatial* metric the
        traffic patterns use; link-graph distance is :meth:`min_hops`."""
        return abs(a.x - b.x) + abs(a.y - b.y)

    def node_set_summary(self) -> str:
        """Human description of the node set, for admission errors."""
        return (f"{self.n_tiles} nodes (0,0)..."
                f"({self.cols - 1},{self.rows - 1})")

    # -- link graph --------------------------------------------------------

    @abstractmethod
    def ports(self, node: Coord) -> Tuple[object, ...]:
        """The node's outgoing network ports with live links, in the
        fabric's fixed deterministic order."""

    @abstractmethod
    def port_neighbor(self, node: Coord, port) -> Optional[Coord]:
        """The node across ``port``'s link, or None when the port does
        not exist at ``node``."""

    @abstractmethod
    def graph_links(self) -> Iterator[GraphLink]:
        """Every directed link of the fabric, in deterministic order."""

    # -- routing -----------------------------------------------------------

    @abstractmethod
    def route_ports(self, src: Coord, dst: Coord) -> List[object]:
        """The fabric's deterministic default route ``src -> dst`` as a
        port sequence (raises :class:`~repro.network.routing.RouteError`
        when ``src == dst``)."""

    def candidate_routes(self, src: Coord,
                         dst: Coord) -> Iterator[List[object]]:
        """Admissible routes in preference order — the default route
        first; fabrics with path diversity (both ring arcs, overlapping
        loops) yield fallbacks for capacity-aware admission."""
        yield self.route_ports(src, dst)

    def next_port(self, here: Coord, dst: Coord):
        """The first port of the default route (fabrics with O(1)
        steering override this)."""
        return self.route_ports(here, dst)[0]

    def min_hops(self, src: Coord, dst: Coord) -> int:
        """Length of the default route, in links."""
        return len(self.route_ports(src, dst))

    def route_links(self, src: Coord, ports: Sequence
                    ) -> List[Tuple[Coord, object]]:
        """Walk a port sequence from ``src`` and return the ``(node,
        port)`` key of every link crossed (raises ``ValueError`` when
        the sequence leaves the declared adjacency)."""
        keys: List[Tuple[Coord, object]] = []
        here = src
        for port in ports:
            nxt = self.port_neighbor(here, port)
            if nxt is None:
                raise ValueError(
                    f"route leaves the {self.name!r} adjacency: no port "
                    f"{port} at {here}")
            keys.append((here, port))
            here = nxt
        return keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.cols}x{self.rows}>"


@dataclass
class Mesh(Topology):
    """A cols x rows grid of tiles — the paper's fabric, now one
    :class:`Topology` instance among several.

    ``link_length_mm`` sets the default physical length of every link;
    ``link_overrides`` allows heterogeneous grids (longer, pipelined
    links between distant tiles).
    """

    cols: int
    rows: int
    link_length_mm: float = 1.5
    link_stages: int = 1
    link_overrides: Dict[Tuple[Coord, Direction], LinkSpec] = field(
        default_factory=dict)

    name = "mesh"
    unidirectional = False

    def __post_init__(self):
        if self.cols < 1 or self.rows < 1:
            raise ValueError("mesh dimensions must be >= 1")
        if self.link_length_mm <= 0:
            raise ValueError("link length must be positive")

    def neighbor(self, coord: Coord, direction: Direction
                 ) -> Optional[Coord]:
        """The tile across ``direction``, or None at the mesh edge."""
        if direction is Direction.LOCAL:
            return None
        nxt = coord.step(direction)
        return nxt if nxt in self else None

    def links(self) -> Iterator[LinkSpec]:
        """All unidirectional links of the mesh."""
        for coord in self.tiles():
            for direction in NETWORK_DIRECTIONS:
                if self.neighbor(coord, direction) is None:
                    continue
                override = self.link_overrides.get((coord, direction))
                if override is not None:
                    yield override
                else:
                    yield LinkSpec(coord, direction, self.link_length_mm,
                                   self.link_stages)

    def link_spec(self, coord: Coord, direction: Direction) -> LinkSpec:
        if self.neighbor(coord, direction) is None:
            raise ValueError(f"no link {direction.name} of {coord}")
        override = self.link_overrides.get((coord, direction))
        if override is not None:
            return override
        return LinkSpec(coord, direction, self.link_length_mm,
                        self.link_stages)

    # -- Topology interface ------------------------------------------------

    def ports(self, node: Coord) -> Tuple[Direction, ...]:
        return tuple(direction for direction in NETWORK_DIRECTIONS
                     if self.neighbor(node, direction) is not None)

    def port_neighbor(self, node: Coord, port) -> Optional[Coord]:
        if port not in NETWORK_DIRECTIONS:
            return None
        return self.neighbor(node, port)

    def graph_links(self) -> Iterator[GraphLink]:
        for spec in self.links():
            yield GraphLink(spec.src, spec.direction, spec.dst,
                            spec.length_mm, spec.stages)

    def route_ports(self, src: Coord, dst: Coord) -> List[Direction]:
        # Function-level import: routing imports this module eagerly,
        # so the mesh's route function resolves its encoder-side twin
        # lazily instead of creating an import cycle.
        from .routing import xy_moves
        return xy_moves(src, dst)

    def next_port(self, here: Coord, dst: Coord) -> Direction:
        """The next hop of the dimension-ordered (X then Y) route — the
        same discipline :func:`repro.network.routing.xy_moves` encodes
        into MANGO source-route headers, applied per hop by destination
        coordinate.  O(1); the single copy of per-hop XY steering."""
        if here.x != dst.x:
            return Direction.EAST if dst.x > here.x else Direction.WEST
        if here.y != dst.y:
            return Direction.SOUTH if dst.y > here.y else Direction.NORTH
        raise ValueError(f"no next hop: already at {dst}")

    def min_hops(self, src: Coord, dst: Coord) -> int:
        return self.manhattan(src, dst)


# -- topology registry -------------------------------------------------------

#: Registered fabrics, keyed by ``ScenarioSpec.topology`` / ``--topology``
#: value.  Factories take ``(cols, rows, link_length_mm, link_stages)``
#: keywords and return a :class:`Topology`.
TOPOLOGIES: Dict[str, Callable[..., Topology]] = {}


def register_topology(name: str,
                      factory: Callable[..., Topology]) -> None:
    """Add a fabric factory under a unique, non-empty name."""
    if not name:
        raise ValueError("a topology needs a name")
    if name in TOPOLOGIES:
        raise ValueError(f"topology {name!r} already registered")
    TOPOLOGIES[name] = factory


def build_topology(name: str, cols: int, rows: int,
                   link_length_mm: float = 1.5,
                   link_stages: int = 1) -> Topology:
    """Instantiate a registered fabric over a ``cols x rows`` tile
    array.  Raises ``KeyError`` (listing the known fabrics) for an
    unknown name."""
    if name not in TOPOLOGIES:
        # The bundled non-grid fabrics register themselves on import;
        # pulling them in lazily keeps this leaf module dependency-free.
        from . import fabrics  # noqa: F401  (import-time registration)
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        known = ", ".join(topology_names())
        raise KeyError(
            f"unknown topology {name!r} (known: {known})") from None
    return factory(cols=cols, rows=rows, link_length_mm=link_length_mm,
                   link_stages=link_stages)


def topology_names() -> List[str]:
    """Registered fabric names, sorted (CLI choices, test params)."""
    if len(TOPOLOGIES) <= 1:
        from . import fabrics  # noqa: F401  (import-time registration)
    return sorted(TOPOLOGIES)


register_topology("mesh", Mesh)
