"""Network adapters (paper Section 3, Figure 1).

Each IP core connects to the network through a network adapter (NA): it
packetizes transactions, terminates GS connections on the local port's
dedicated GS interfaces, injects/receives BE packets, and performs the
synchronization between the clocked core and the clockless network — the
GALS boundary.  OCP-style read/write transactions ride on top
(:mod:`repro.network.ocp`).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Generator, List, Optional

from ..core.output_port import ShareFlow
from ..network.packet import BeFlit, BePacket, GsFlit, Steering, make_be_packet
from ..network.routing import route_words_for
from ..network.topology import Coord, Direction
from ..sim.kernel import Simulator
from ..sim.resources import Store

__all__ = ["ClockDomain", "GsTxEndpoint", "NetworkAdapter"]


class ClockDomain:
    """The IP core's clock: injection/consumption happen on edges, and
    data entering the clock domain pays a synchronizer latency."""

    def __init__(self, period_ns: float, sync_cycles: int = 2,
                 offset_ns: float = 0.0):
        if period_ns <= 0:
            raise ValueError("clock period must be positive")
        if sync_cycles < 1:
            raise ValueError("a synchronizer is at least one cycle")
        self.period_ns = period_ns
        self.sync_cycles = sync_cycles
        self.offset_ns = offset_ns

    @property
    def frequency_mhz(self) -> float:
        return 1e3 / self.period_ns

    @property
    def sync_latency_ns(self) -> float:
        return self.sync_cycles * self.period_ns

    def next_edge(self, sim: Simulator):
        """Timeout to the next clock edge strictly after now."""
        now = sim.now - self.offset_ns
        edges = math.floor(now / self.period_ns) + 1
        target = edges * self.period_ns + self.offset_ns
        return sim.timeout(target - sim.now)


class GsTxEndpoint:
    """Source end of a GS connection: one of the NA's local GS interfaces.

    Holds the connection's first-hop steering bits and a sharebox that the
    first router's VC control module unlocks — the inherent end-to-end
    flow control of MANGO reaches all the way into the NA.
    """

    def __init__(self, sim: Simulator, iface: int, name: str):
        self.sim = sim
        self.iface = iface
        self.name = name
        self.queue = Store(sim, name=f"{name}.q")  # application-side queue
        self.flow = ShareFlow(sim, name=f"{name}.flow")
        self.steering: Optional[Steering] = None
        self.connection_id: Optional[int] = None
        self.flits_injected = 0

    @property
    def bound(self) -> bool:
        return self.steering is not None


class NetworkAdapter:
    """One tile's NA: GS endpoints + BE interface + GALS synchronization."""

    def __init__(self, sim: Simulator, coord: Coord, router, local_link,
                 clock: Optional[ClockDomain] = None):
        self.sim = sim
        self.coord = coord
        self.router = router
        self.local_link = local_link
        self.clock = clock
        self.name = f"NA{coord.x}.{coord.y}"
        config = router.config
        self.tx_endpoints: List[GsTxEndpoint] = [
            GsTxEndpoint(sim, i, name=f"{self.name}.tx{i}")
            for i in range(config.local_gs_interfaces)
        ]
        self._rx_bound: Dict[int, Callable] = {}
        self.be_inbox: Store = Store(sim, name=f"{self.name}.be_inbox")
        self._ack_handlers: List[Callable[[int], None]] = []
        self._packet_handlers: List[Callable[[BePacket], Optional[bool]]] = []
        self.be_packets_sent = 0
        self.be_packets_received = 0
        self.dropped_rx_flits = 0
        local_link.attach_adapter(self)
        # Endpoint processes are persistent; bind/unbind only swaps the
        # routing state, so teardown never leaves stale waiters on stores.
        for endpoint in self.tx_endpoints:
            sim.process(self._tx_run(endpoint), name=f"{endpoint.name}.run")
        for iface in range(config.local_gs_interfaces):
            sim.process(self._rx_run(iface), name=f"{self.name}.rx{iface}")
        sim.process(self._be_dispatch(), name=f"{self.name}.be_dispatch")

    # -- GS transmit -----------------------------------------------------------

    def bind_tx(self, iface: int, steering: Steering,
                connection_id: int) -> GsTxEndpoint:
        """Attach a new connection's first hop to a local GS interface."""
        endpoint = self.tx_endpoints[iface]
        if endpoint.bound:
            raise ValueError(f"{endpoint.name} already bound to connection "
                             f"{endpoint.connection_id}")
        endpoint.steering = steering
        endpoint.connection_id = connection_id
        return endpoint

    def unbind_tx(self, iface: int) -> None:
        endpoint = self.tx_endpoints[iface]
        endpoint.steering = None
        endpoint.connection_id = None

    def release_tx(self, iface: int) -> None:
        """Unlock toggle from the router's VC control module."""
        self.tx_endpoints[iface].flow.release()

    def gs_send(self, iface: int, flit: GsFlit) -> None:
        """Queue a flit on a bound connection (application side)."""
        endpoint = self.tx_endpoints[iface]
        if not endpoint.bound:
            raise ValueError(f"{endpoint.name} is not bound to a connection")
        if flit.inject_time < 0:
            flit.inject_time = self.sim.now
        flit.connection_id = endpoint.connection_id
        if not endpoint.queue.try_put(flit):  # pragma: no cover
            raise RuntimeError("unbounded queue refused a put")

    def _tx_run(self, endpoint: GsTxEndpoint):
        cycle_ns = self.router.config.timing.link_cycle_ns
        while True:
            yield endpoint.queue.when_any()
            if self.clock is not None:
                yield self.clock.next_edge(self.sim)
            while not endpoint.flow.ready:
                yield endpoint.flow.wait_ready()
            flit = endpoint.queue.try_get()
            if flit is None:  # pragma: no cover - single consumer
                continue
            if not endpoint.bound:
                # Stragglers queued before an unbind are dropped; the
                # manager drains connections before closing them.
                self.dropped_rx_flits += 1
                continue
            endpoint.flow.admit()
            endpoint.flits_injected += 1
            self.local_link.transmit_inject(endpoint.steering, flit)
            yield self.sim.timeout(cycle_ns)

    # -- GS receive --------------------------------------------------------------

    def bind_rx(self, iface: int, callback: Callable[[GsFlit, float], None]
                ) -> None:
        """Deliver flits arriving on a local GS interface to ``callback``."""
        if iface in self._rx_bound:
            raise ValueError(f"{self.name}: rx interface {iface} already "
                             "bound")
        self._rx_bound[iface] = callback

    def unbind_rx(self, iface: int) -> None:
        self._rx_bound.pop(iface, None)

    def _deliver_rx(self, iface: int, flit: GsFlit) -> None:
        callback = self._rx_bound.get(iface)
        if callback is None:
            self.dropped_rx_flits += 1
        else:
            tracer = self.router.tracer
            if tracer.enabled:
                tracer.emit(self.sim.now, self.name, "eject",
                            flit=f"c{flit.connection_id}.{flit.payload}",
                            cls="gs", iface=iface)
            callback(flit, self.sim.now)

    def _rx_run(self, iface: int):
        if self.clock is None:
            while True:
                flit = yield self.router.local_output.take(iface)
                self._deliver_rx(iface, flit)
        # Clocked core: a small synchronizer FIFO pipelines the crossing —
        # throughput one flit per clock edge, latency the synchronizer
        # depth, back-pressure through the bounded FIFO into the network.
        sync_fifo = Store(self.sim, capacity=4,
                          name=f"{self.name}.sync{iface}")
        self.sim.process(self._rx_sync_mover(iface, sync_fifo),
                         name=f"{self.name}.sync_mover{iface}")
        while True:
            yield sync_fifo.when_any()
            while not sync_fifo.is_empty:
                yield self.clock.next_edge(self.sim)
                arrival, flit = sync_fifo.head()
                if self.sim.now - arrival >= self.clock.sync_latency_ns:
                    sync_fifo.try_get()
                    self._deliver_rx(iface, flit)

    def _rx_sync_mover(self, iface: int, sync_fifo: Store):
        while True:
            flit = yield self.router.local_output.take(iface)
            yield sync_fifo.put((self.sim.now, flit))

    # -- BE interface -------------------------------------------------------------

    def send_be(self, dst: Coord, words: List[int], vc: int = 0
                ) -> Generator:
        """Sub-generator: inject one BE packet routed to ``dst``.

        ``vc`` selects the BE VC explicitly, or pass ``"adaptive"`` to
        let the NA pick the emptier VC at the first hop — the "adaptive
        VC allocation" extension the spare header bit enables (paper
        Section 5).  Same-tile traffic is looped back locally (the 2-bit
        rotation scheme cannot address the own local port, DESIGN.md §4).
        """
        if dst == self.coord:
            packet = BePacket(header=0, words=list(words),
                              packet_id=-1, src=self.coord,
                              inject_time=self.sim.now,
                              arrive_time=self.sim.now)
            self._dispatch_packet(packet)
            return
        header = route_words_for(self.coord, dst)
        yield self.router.hold_local_be_port()
        try:
            # Decide the VC once injection actually starts, so adaptive
            # selection sees the congestion state at that moment.
            chosen = self._pick_be_vc(dst) if vc == "adaptive" else vc
            flits = make_be_packet(header, words, vc=chosen,
                                   inject_time=self.sim.now,
                                   src=self.coord)
            self.be_packets_sent += 1
            tracer = self.router.tracer
            if tracer.enabled:
                # Tagged like the downstream hop/delivery records
                # (vc + header word, never the global packet_id).
                cycle_ns = self.router.config.timing.link_cycle_ns
                tracer.emit(self.sim.now, self.name, "inject",
                            flit=f"be{chosen}.{header}", cls="be",
                            dur_ns=cycle_ns * len(flits))
            yield from self.router._inject_local_be_flits(flits)
        finally:
            self.router.release_local_be_port()

    def _pick_be_vc(self, dst: Coord) -> int:
        """Choose the less-congested BE VC towards the first hop of the
        XY route (most available downstream credits; ties favour VC 0)."""
        from .routing import xy_moves
        vcs = self.router.be_router.vcs
        if vcs < 2:
            return 0
        first_move = xy_moves(self.coord, dst)[0]
        port = self.router.output_ports[first_move]
        best_vc, best_credits = 0, -1
        for index, channel in enumerate(port.be_tx):
            free = channel.credits - len(channel.queue.items)
            if free > best_credits:
                best_vc, best_credits = index, free
        return best_vc

    def on_config_ack(self, handler: Callable[[int], None]) -> None:
        self._ack_handlers.append(handler)

    def add_packet_handler(self, handler: Callable[[BePacket],
                                                   Optional[bool]]) -> None:
        """Handlers may claim a packet by returning True; unclaimed packets
        land in :attr:`be_inbox`."""
        self._packet_handlers.append(handler)

    def _be_dispatch(self):
        from ..core.programming import OP_ACK, is_config_word
        while True:
            packet = yield self.router.local_be_rx.get()
            self.be_packets_received += 1
            tracer = self.router.tracer
            if tracer.enabled:
                tracer.emit(self.sim.now, self.name, "eject",
                            flit=f"be.{packet.header}",
                            flits=packet.n_flits)
            words = packet.words
            if words and is_config_word(words[0]) \
                    and ((words[0] >> 20) & 0xF) == OP_ACK:
                seq = (words[0] >> 8) & 0xFFF
                for handler in self._ack_handlers:
                    handler(seq)
                continue
            self._dispatch_packet(packet)

    def _dispatch_packet(self, packet: BePacket) -> None:
        for handler in self._packet_handlers:
            if handler(packet):
                return
        if not self.be_inbox.try_put(packet):  # pragma: no cover
            raise RuntimeError("unbounded inbox refused a put")
