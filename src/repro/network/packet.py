"""Flit and packet formats.

On a MANGO link a flit is 39 bits: 5 steering bits (3 split + 2 switch,
stripped stage by stage inside the next router, paper Figure 5) plus a
34-bit body — 32 data bits, one tail/control bit ("last flit") and one
BE-VC bit (unused for GS; selects one of two BE VCs when the BE router is
extended, paper Section 5).

Steering encoding: an input port never routes back out the way it came, so
its split module has eight targets — {four allowed output ports} x {two
4x4-switch halves}.  The 3-bit split code indexes those; the 2-bit switch
code picks the VC inside the half.  BE flits are identified on the link and
consume only the 3-bit split stage before entering the BE router ("three
steering bits have been stripped, and a total of 34 bits remain").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .routing import as_route_words
from .topology import Coord, Direction, NETWORK_DIRECTIONS

__all__ = [
    "FLIT_DATA_BITS",
    "FLIT_BODY_BITS",
    "STEERING_BITS",
    "LINK_FLIT_BITS",
    "SteeringError",
    "Steering",
    "allowed_output_ports",
    "encode_steering",
    "decode_steering",
    "GsFlit",
    "BeFlit",
    "BePacket",
    "make_be_packet",
]

FLIT_DATA_BITS = 32
#: data + tail bit + BE-VC bit
FLIT_BODY_BITS = FLIT_DATA_BITS + 2
#: 3-bit split code + 2-bit switch code
STEERING_BITS = 5
LINK_FLIT_BITS = FLIT_BODY_BITS + STEERING_BITS

_DATA_MASK = (1 << FLIT_DATA_BITS) - 1


class SteeringError(ValueError):
    """Raised for unroutable steering combinations."""


@dataclass(frozen=True)
class Steering:
    """Raw steering bits as they travel on the link."""

    split_code: int   # 3 bits: {allowed output port} x {switch half}
    switch_code: int  # 2 bits: VC within the half

    def __post_init__(self):
        if not 0 <= self.split_code < 8:
            raise SteeringError(f"split code {self.split_code} not 3-bit")
        if not 0 <= self.switch_code < 4:
            raise SteeringError(f"switch code {self.switch_code} not 2-bit")

    @property
    def raw(self) -> int:
        """The 5 steering bits as one integer (split in the MSBs)."""
        return (self.split_code << 2) | self.switch_code


def allowed_output_ports(in_dir: Direction) -> Tuple[Direction, ...]:
    """Output ports reachable from an input port, in split-code order.

    A network input cannot route back out its own direction but can reach
    the local port; the local input reaches all four network ports.
    """
    if in_dir is Direction.LOCAL:
        return NETWORK_DIRECTIONS
    ports = tuple(d for d in NETWORK_DIRECTIONS if d is not in_dir)
    return ports + (Direction.LOCAL,)


def encode_steering(in_dir: Direction, out_port: Direction,
                    out_vc: int, vcs_per_port: int = 8,
                    local_interfaces: int = 4) -> Steering:
    """Steering bits that guide a flit entering on ``in_dir`` to the VC
    buffer ``out_vc`` at ``out_port`` (computed by the *upstream* router's
    connection table or the source NA)."""
    ports = allowed_output_ports(in_dir)
    if out_port not in ports:
        raise SteeringError(
            f"input {in_dir.name} cannot reach output {out_port.name}")
    limit = (local_interfaces if out_port is Direction.LOCAL
             else vcs_per_port)
    if not 0 <= out_vc < limit:
        raise SteeringError(
            f"VC {out_vc} out of range for {out_port.name} (< {limit})")
    half, lane = divmod(out_vc, 4)
    split_code = ports.index(out_port) * 2 + half
    return Steering(split_code, lane)


def decode_steering(in_dir: Direction, steering: Steering,
                    vcs_per_port: int = 8,
                    local_interfaces: int = 4
                    ) -> Tuple[Direction, int]:
    """Inverse of :func:`encode_steering`: performed by the split module
    (3 bits) and the 4x4 switch (2 bits) of the receiving router."""
    ports = allowed_output_ports(in_dir)
    port_index, half = divmod(steering.split_code, 2)
    if port_index >= len(ports):
        raise SteeringError(
            f"split code {steering.split_code} targets a non-existent port "
            f"from input {in_dir.name}")
    out_port = ports[port_index]
    out_vc = half * 4 + steering.switch_code
    limit = (local_interfaces if out_port is Direction.LOCAL
             else vcs_per_port)
    if out_vc >= limit:
        raise SteeringError(
            f"decoded VC {out_vc} out of range for {out_port.name}")
    return out_port, out_vc


_flit_ids = itertools.count()


@dataclass(slots=True)
class GsFlit:
    """A flit on a GS connection: header-less 32-bit payload.

    The tail bit is available to the network adapters for message framing
    (it is the link's control bit, unused by the GS routers themselves).
    """

    payload: int
    connection_id: int = -1
    seq: int = -1
    last: bool = False
    inject_time: float = -1.0
    flit_id: int = field(default_factory=lambda: next(_flit_ids))
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        self.payload &= _DATA_MASK


@dataclass(slots=True)
class BeFlit:
    """A flit of a connection-less BE packet.

    ``route_ext`` is meaningful on the head flit only: the number of
    chained route words (header-extension flits) still travelling behind
    the header.  Routers strip extension flits as their route words are
    spent, so a delivered packet always carries ``route_ext == 0``.
    """

    word: int
    is_head: bool = False
    is_tail: bool = False
    vc: int = 0
    packet_id: int = -1
    inject_time: float = -1.0
    route_ext: int = 0
    flit_id: int = field(default_factory=lambda: next(_flit_ids))

    def __post_init__(self):
        self.word &= _DATA_MASK
        if self.vc not in (0, 1):
            raise ValueError("the BE-VC bit selects one of two BE VCs")


_packet_ids = itertools.count()


@dataclass(slots=True)
class BePacket:
    """An assembled BE packet: header word plus payload words."""

    header: int
    words: List[int]
    packet_id: int
    src: Optional[Coord] = None
    inject_time: float = -1.0
    arrive_time: float = -1.0

    @property
    def n_flits(self) -> int:
        return 1 + len(self.words)

    @property
    def latency(self) -> float:
        return self.arrive_time - self.inject_time


def make_be_packet(header: Union[int, Sequence[int]], words: List[int],
                   vc: int = 0, inject_time: float = -1.0,
                   src: Optional[Coord] = None) -> List[BeFlit]:
    """Build the flit sequence of a variable-length BE packet.

    ``header`` is a single 32-bit route word or a chained route-word
    sequence (see :mod:`repro.network.routing`); extension words travel
    as header-extension flits directly behind the header.  The control
    bit marks the last flit.  An empty payload is legal (the final
    header word is then also the tail).
    """
    route_words = as_route_words(header)
    extensions = route_words[1:]
    packet_id = next(_packet_ids)
    flits = [BeFlit(route_words[0], is_head=True,
                    is_tail=not (words or extensions), vc=vc,
                    packet_id=packet_id, inject_time=inject_time,
                    route_ext=len(extensions))]
    for index, ext_word in enumerate(extensions):
        flits.append(BeFlit(ext_word,
                            is_tail=(not words
                                     and index == len(extensions) - 1),
                            vc=vc, packet_id=packet_id,
                            inject_time=inject_time))
    for index, word in enumerate(words):
        flits.append(BeFlit(word, is_tail=(index == len(words) - 1), vc=vc,
                            packet_id=packet_id, inject_time=inject_time))
    return flits
