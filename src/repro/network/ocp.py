"""Minimal OCP transaction layer over the BE network (paper Section 3).

Each NA provides "high level communication services, i.e. OCP
transactions, on the basis of primitive services implemented by the
network".  This module maps OCP-style reads and writes onto BE
request/response packets:

``command word``::

    [31:28] 0xA magic
    [27:24] command   (1 WR, 2 RD, 3 WR-response, 4 RD-response)
    [23:16] tag       (matches responses to requests)
    [15:8]  source x  (for the response route)
    [7:0]   source y

followed by an address word and, for writes / read responses, data words.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..sim.kernel import Event, Simulator
from .packet import BePacket
from .topology import Coord

__all__ = ["OCP_MAGIC", "OcpError", "OcpMaster", "OcpMemorySlave",
           "OcpResponse", "OcpStreamWriter", "OcpStreamReceiver"]

OCP_MAGIC = 0xA
CMD_WRITE = 1
CMD_READ = 2
CMD_WRITE_RESP = 3
CMD_READ_RESP = 4


class OcpError(Exception):
    """Malformed OCP packet or protocol violation."""


def _command_word(cmd: int, tag: int, src: Coord) -> int:
    if not 0 <= tag < 256:
        raise OcpError(f"tag {tag} does not fit in 8 bits")
    if not (0 <= src.x < 256 and 0 <= src.y < 256):
        raise OcpError(f"source {src} does not fit the 8-bit fields")
    return (OCP_MAGIC << 28) | (cmd << 24) | (tag << 16) | (src.x << 8) | src.y


def is_ocp_word(word: int) -> bool:
    return (word >> 28) & 0xF == OCP_MAGIC


def _parse(words: List[int]):
    if not words or not is_ocp_word(words[0]):
        raise OcpError("not an OCP packet")
    head = words[0]
    cmd = (head >> 24) & 0xF
    tag = (head >> 16) & 0xFF
    src = Coord((head >> 8) & 0xFF, head & 0xFF)
    return cmd, tag, src, words[1:]


@dataclass
class OcpResponse:
    """Completion of an OCP transaction."""

    tag: int
    command: int
    data: List[int] = field(default_factory=list)
    complete_time: float = -1.0


class OcpMaster:
    """Issues OCP reads/writes from one tile; matches responses by tag."""

    def __init__(self, adapter):
        self.adapter = adapter
        self.sim: Simulator = adapter.sim
        self._tags = itertools.count()
        self._pending: Dict[int, Event] = {}
        self.completed: List[OcpResponse] = []
        adapter.add_packet_handler(self._handle)

    def _handle(self, packet: BePacket) -> bool:
        try:
            cmd, tag, _src, rest = _parse(packet.words)
        except OcpError:
            return False
        if cmd not in (CMD_WRITE_RESP, CMD_READ_RESP):
            return False
        event = self._pending.pop(tag, None)
        if event is None:
            raise OcpError(f"response with unknown tag {tag}")
        response = OcpResponse(tag=tag, command=cmd, data=rest[1:],
                               complete_time=self.sim.now)
        self.completed.append(response)
        event.succeed(response)
        return True

    def write(self, target: Coord, addr: int, data: List[int]
              ) -> Generator:
        """Sub-generator: posted write + wait for the write response.
        Returns the :class:`OcpResponse`."""
        tag = next(self._tags) & 0xFF
        words = [_command_word(CMD_WRITE, tag, self.adapter.coord),
                 addr & 0xFFFFFFFF] + [d & 0xFFFFFFFF for d in data]
        event = Event(self.sim)
        self._pending[tag] = event
        yield from self.adapter.send_be(target, words)
        response = yield event
        return response

    def read(self, target: Coord, addr: int, length: int = 1) -> Generator:
        """Sub-generator: read ``length`` words; returns OcpResponse with
        the data."""
        if not 1 <= length <= 16:
            raise OcpError("read length must be 1..16")
        tag = next(self._tags) & 0xFF
        words = [_command_word(CMD_READ, tag, self.adapter.coord),
                 addr & 0xFFFFFFFF, length]
        event = Event(self.sim)
        self._pending[tag] = event
        yield from self.adapter.send_be(target, words)
        response = yield event
        return response


class OcpMemorySlave:
    """A memory-mapped OCP slave: serves reads/writes from a dict."""

    def __init__(self, adapter, latency_ns: float = 5.0):
        self.adapter = adapter
        self.sim: Simulator = adapter.sim
        self.latency_ns = latency_ns
        self.memory: Dict[int, int] = {}
        self.reads = 0
        self.writes = 0
        adapter.add_packet_handler(self._handle)

    def _handle(self, packet: BePacket) -> bool:
        try:
            cmd, tag, src, rest = _parse(packet.words)
        except OcpError:
            return False
        if cmd not in (CMD_WRITE, CMD_READ):
            return False
        self.sim.process(self._serve(cmd, tag, src, rest),
                         name=f"ocp_slave:{self.adapter.coord}")
        return True

    def _serve(self, cmd: int, tag: int, src: Coord, rest: List[int]):
        yield self.sim.timeout(self.latency_ns)
        if not rest:
            raise OcpError("OCP request without an address word")
        addr = rest[0]
        if cmd == CMD_WRITE:
            for offset, word in enumerate(rest[1:]):
                self.memory[addr + offset] = word
            self.writes += 1
            words = [_command_word(CMD_WRITE_RESP, tag, self.adapter.coord),
                     addr]
        else:
            length = rest[1] if len(rest) > 1 else 1
            data = [self.memory.get(addr + i, 0) for i in range(length)]
            self.reads += 1
            words = [_command_word(CMD_READ_RESP, tag, self.adapter.coord),
                     addr] + data
        yield from self.adapter.send_be(src, words)


class OcpStreamWriter:
    """OCP burst writes carried over a GS connection.

    The paper's NAs offer OCP transactions "on the basis of primitive
    services implemented by the network"; for throughput-critical bursts
    the primitive service is a GS connection, not BE packets: header-less
    flits, guaranteed bandwidth, inherent end-to-end flow control.  A
    burst is framed as [address, data...], with the tail bit of the final
    flit closing the message.
    """

    def __init__(self, connection):
        self.connection = connection
        self.bursts_sent = 0
        self.words_sent = 0

    def write_burst(self, addr: int, data: List[int]) -> None:
        """Queue one burst write (address flit + data flits, tail-framed)."""
        if not data:
            raise OcpError("a burst write needs at least one data word")
        self.connection.send(addr & 0xFFFFFFFF)
        for index, word in enumerate(data):
            self.connection.send(word & 0xFFFFFFFF,
                                 last=(index == len(data) - 1))
        self.bursts_sent += 1
        self.words_sent += len(data)


class OcpStreamReceiver:
    """Destination side of :class:`OcpStreamWriter`: reassembles bursts
    from the framed GS flit stream and commits them to a memory dict."""

    def __init__(self, adapter, connection):
        self.adapter = adapter
        self.memory: Dict[int, int] = {}
        self.bursts_received = 0
        self._current: Optional[List[int]] = None
        adapter.unbind_rx(connection.dst_iface)
        adapter.bind_rx(connection.dst_iface, self._on_flit)

    def _on_flit(self, flit, _now: float) -> None:
        if self._current is None:
            self._current = [flit.payload]  # address flit opens the burst
            return
        self._current.append(flit.payload)
        if flit.last:
            addr, *data = self._current
            for offset, word in enumerate(data):
                self.memory[addr + offset] = word
            self.bursts_received += 1
            self._current = None
