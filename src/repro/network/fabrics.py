"""Non-grid fabrics: ring, hierarchical ring, and routerless NoCs.

Three :class:`~repro.network.topology.Topology` instances over the same
``cols x rows`` tile array as the mesh, differing only in the link
graph and the deterministic route function:

* :class:`RingTopology` (``ring`` / ``ring-uni``) — all tiles on one
  ring in boustrophedon (snake) order, after Wu's ring router
  microarchitecture: a 3-port router (CW, CCW, local) is much cheaper
  than a 5-port mesh router, trading diameter for area.  The
  bidirectional variant routes along the *shorter arc* and can fall
  back to the longer one under admission pressure; ``ring-uni`` keeps
  only the clockwise links.
* :class:`HierarchicalRingTopology` (``hring``) — one unidirectional
  local ring per row plus a unidirectional global ring through the
  column-0 hub tiles; routes are local-arc -> global-arc -> local-arc.
* :class:`RouterlessTopology` (``routerless``) — overlapping
  unidirectional loops per Indrusiak & Burns: a global snake loop over
  every tile plus one loop per row and per column.  Tiles have no
  routing logic at all — a flit picks a loop at injection and rides it
  to the destination, so the route function reduces to a deterministic
  loop choice (fewest hops, lowest loop id).

All three are *circulant-style* graphs: every route is a run of equal
port labels, so the per-hop steering is trivial and the analytical
latency bound is ``hops x (per-link GS sharers + 1) x cycle`` under
fair-share arbitration (see ``docs/topologies.md``).

Importing this module registers the fabrics; :func:`build_topology`
does so lazily on first non-mesh lookup.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from .topology import (Coord, GraphLink, Port, Topology, register_topology)

__all__ = [
    "GraphTopology",
    "HierarchicalRingTopology",
    "RingTopology",
    "RouterlessTopology",
    "snake_order",
]


def snake_order(cols: int, rows: int) -> List[Coord]:
    """The boustrophedon tile order: row 0 west->east, row 1 east->west,
    ... — consecutive tiles are always grid neighbours, so a ring laid
    out along it has unit-length links everywhere except the wrap."""
    order: List[Coord] = []
    for y in range(rows):
        xs = range(cols) if y % 2 == 0 else range(cols - 1, -1, -1)
        order.extend(Coord(x, y) for x in xs)
    return order


class GraphTopology(Topology):
    """Base for fabrics built as an explicit link table.

    Subclasses call :meth:`_add_link` from ``__init__`` in a
    deterministic order; ports, adjacency and :meth:`graph_links` all
    derive from that insertion order, so every downstream iteration
    (link counter maps, VC pools, fingerprints, route searches) is
    reproducible by construction.
    """

    def __init__(self, cols: int, rows: int,
                 link_length_mm: float = 1.5, link_stages: int = 1):
        if cols < 1 or rows < 1:
            raise ValueError(f"{self.name} dimensions must be >= 1")
        if cols * rows < 2:
            raise ValueError(
                f"a {self.name} fabric needs at least 2 tiles")
        if link_length_mm <= 0:
            raise ValueError("link length must be positive")
        self.cols = cols
        self.rows = rows
        self.link_length_mm = link_length_mm
        self.link_stages = link_stages
        self._adjacency: Dict[Tuple[Coord, Port], Coord] = {}
        self._ports: Dict[Coord, List[Port]] = {}
        self._links: List[GraphLink] = []

    def _add_link(self, src: Coord, port: Port, dst: Coord,
                  length_mm: Optional[float] = None) -> None:
        key = (src, port)
        if key in self._adjacency:
            raise ValueError(f"duplicate link {port} at {src}")
        if length_mm is None:
            # Snake-adjacent hops are unit links; wrap-around links are
            # as long as the grid distance they span.
            length_mm = max(1, self.manhattan(src, dst)) \
                * self.link_length_mm
        self._adjacency[key] = dst
        self._ports.setdefault(src, []).append(port)
        self._links.append(
            GraphLink(src, port, dst, length_mm, self.link_stages))

    # -- Topology interface ------------------------------------------------

    def ports(self, node: Coord) -> Tuple[Port, ...]:
        return tuple(self._ports.get(node, ()))

    def port_neighbor(self, node: Coord, port) -> Optional[Coord]:
        return self._adjacency.get((node, port))

    def graph_links(self) -> Iterator[GraphLink]:
        return iter(self._links)

    def _no_route(self, src: Coord, dst: Coord):
        from .routing import RouteError
        if src == dst:
            raise RouteError(
                "same-tile traffic does not traverse the network; the "
                "adapter loops it back locally (see DESIGN.md)")
        raise RouteError(f"no {self.name} route from {src} to {dst}")


class RingTopology(GraphTopology):
    """All tiles on one ring in snake order (Wu's ring router fabric).

    Bidirectional by default: every tile has a clockwise (``CW``) and a
    counter-clockwise (``CCW``) port, and the route function takes the
    shorter arc (clockwise on ties).  ``unidirectional=True`` drops the
    CCW links, halving the wiring at the cost of worst-case routes of
    ``N - 1`` hops.
    """

    name = "ring"

    CW = Port("CW")
    CCW = Port("CCW")

    def __init__(self, cols: int, rows: int,
                 link_length_mm: float = 1.5, link_stages: int = 1,
                 unidirectional: bool = False):
        super().__init__(cols, rows, link_length_mm, link_stages)
        self.unidirectional = unidirectional
        if unidirectional:
            self.name = "ring-uni"
        order = snake_order(cols, rows)
        self._position = {coord: i for i, coord in enumerate(order)}
        n = len(order)
        for i, coord in enumerate(order):
            self._add_link(coord, self.CW, order[(i + 1) % n])
        if not unidirectional:
            for i, coord in enumerate(order):
                self._add_link(coord, self.CCW, order[(i - 1) % n])

    def _arc(self, src: Coord, dst: Coord, port: Port) -> List[Port]:
        gap = self._position[dst] - self._position[src]
        hops = gap % self.n_tiles if port is self.CW \
            else (-gap) % self.n_tiles
        return [port] * hops

    def route_ports(self, src: Coord, dst: Coord) -> List[Port]:
        if src == dst or src not in self or dst not in self:
            self._no_route(src, dst)
        cw = (self._position[dst] - self._position[src]) % self.n_tiles
        if self.unidirectional or cw <= self.n_tiles - cw:
            return [self.CW] * cw
        return [self.CCW] * (self.n_tiles - cw)

    def candidate_routes(self, src: Coord,
                         dst: Coord) -> Iterator[List[Port]]:
        preferred = self.route_ports(src, dst)
        yield preferred
        if not self.unidirectional:
            # The longer arc is a real alternative path: yield it so
            # capacity-aware admission can route around a full link.
            other = self.CCW if preferred[0] is self.CW else self.CW
            yield self._arc(src, dst, other)

    def next_port(self, here: Coord, dst: Coord) -> Port:
        if here == dst:
            self._no_route(here, dst)
        if self.unidirectional:
            return self.CW
        cw = (self._position[dst] - self._position[here]) % self.n_tiles
        return self.CW if cw <= self.n_tiles - cw else self.CCW

    def min_hops(self, src: Coord, dst: Coord) -> int:
        cw = (self._position[dst] - self._position[src]) % self.n_tiles
        if self.unidirectional:
            return cw
        return min(cw, self.n_tiles - cw)


class HierarchicalRingTopology(GraphTopology):
    """Per-row local rings bridged by a global ring of hub tiles.

    Every row is a unidirectional ring in x order (port ``L``); the
    column-0 tile of each row is its *hub*, and the hubs form a
    unidirectional global ring in y order (port ``G``).  A cross-row
    route is local-arc to the source hub, global-arc to the destination
    row's hub, then local-arc out to the destination — the classic
    two-level hierarchy that keeps routers at 3 ports while bounding
    routes by ``cols - 1 + rows - 1 + cols - 1`` hops.
    """

    name = "hring"
    unidirectional = True

    LOCAL = Port("L")
    GLOBAL = Port("G")

    def __init__(self, cols: int, rows: int,
                 link_length_mm: float = 1.5, link_stages: int = 1):
        if cols < 2 or rows < 2:
            raise ValueError(
                "a hierarchical ring needs cols >= 2 and rows >= 2 "
                "(one local ring per row plus a global ring of hubs)")
        super().__init__(cols, rows, link_length_mm, link_stages)
        for y in range(rows):
            for x in range(cols):
                self._add_link(Coord(x, y), self.LOCAL,
                               Coord((x + 1) % cols, y))
        for y in range(rows):
            self._add_link(Coord(0, y), self.GLOBAL,
                           Coord(0, (y + 1) % rows))

    def route_ports(self, src: Coord, dst: Coord) -> List[Port]:
        if src == dst or src not in self or dst not in self:
            self._no_route(src, dst)
        if src.y == dst.y:
            return [self.LOCAL] * ((dst.x - src.x) % self.cols)
        to_hub = (-src.x) % self.cols
        across = (dst.y - src.y) % self.rows
        from_hub = dst.x % self.cols
        return ([self.LOCAL] * to_hub + [self.GLOBAL] * across
                + [self.LOCAL] * from_hub)


class RouterlessTopology(GraphTopology):
    """Overlapping unidirectional loops (Indrusiak & Burns).

    Loop 0 is the global snake cycle over every tile; loops
    ``1..rows`` circle each row in x order; loops ``rows+1..rows+cols``
    circle each column in y order (row/column loops exist only when
    they have >= 2 tiles).  A tile's port onto loop ``k`` is named
    ``Lk``; a flit joins exactly one loop at injection and rides it to
    the destination, so the deterministic route picks the loop shared
    by source and destination with the fewest forward hops (lowest loop
    id on ties) and :meth:`candidate_routes` offers the remaining
    shared loops as admission fallbacks.
    """

    name = "routerless"
    unidirectional = True

    def __init__(self, cols: int, rows: int,
                 link_length_mm: float = 1.5, link_stages: int = 1):
        super().__init__(cols, rows, link_length_mm, link_stages)
        # Loop id -> tile cycle; positions double as forward distances.
        self._loops: List[List[Coord]] = [snake_order(cols, rows)]
        for y in range(rows):
            if cols >= 2:
                self._loops.append([Coord(x, y) for x in range(cols)])
        for x in range(cols):
            if rows >= 2:
                self._loops.append([Coord(x, y) for y in range(rows)])
        self._loop_position: List[Dict[Coord, int]] = []
        for loop_id, cycle in enumerate(self._loops):
            port = Port(f"L{loop_id}")
            n = len(cycle)
            for i, coord in enumerate(cycle):
                self._add_link(coord, port, cycle[(i + 1) % n])
            self._loop_position.append(
                {coord: i for i, coord in enumerate(cycle)})

    def loop_choices(self, src: Coord,
                     dst: Coord) -> List[Tuple[int, int]]:
        """``(hops, loop_id)`` for every loop through both tiles,
        sorted by preference (fewest forward hops, lowest id)."""
        choices = []
        for loop_id, position in enumerate(self._loop_position):
            if src in position and dst in position:
                hops = (position[dst] - position[src]) \
                    % len(self._loops[loop_id])
                choices.append((hops, loop_id))
        choices.sort()
        return choices

    def route_ports(self, src: Coord, dst: Coord) -> List[Port]:
        if src == dst or src not in self or dst not in self:
            self._no_route(src, dst)
        hops, loop_id = self.loop_choices(src, dst)[0]
        return [Port(f"L{loop_id}")] * hops

    def candidate_routes(self, src: Coord,
                         dst: Coord) -> Iterator[List[Port]]:
        if src == dst or src not in self or dst not in self:
            self._no_route(src, dst)
        for hops, loop_id in self.loop_choices(src, dst):
            yield [Port(f"L{loop_id}")] * hops


def _build_ring_uni(cols: int, rows: int, link_length_mm: float = 1.5,
                    link_stages: int = 1) -> RingTopology:
    return RingTopology(cols, rows, link_length_mm, link_stages,
                        unidirectional=True)


register_topology("ring", RingTopology)
register_topology("ring-uni", _build_ring_uni)
register_topology("hring", HierarchicalRingTopology)
register_topology("routerless", RouterlessTopology)
