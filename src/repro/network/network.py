"""The MANGO network facade.

Builds a mesh of routers, links and network adapters and exposes the
user-facing API: open/close GS connections, send BE packets, run the
simulation, and collect aggregate statistics.
"""

from __future__ import annotations

from typing import Dict, Generator, Iterator, List, Optional, Tuple

from ..core.config import RouterConfig
from ..core.counters import ActivityCounters
from ..core.router import MangoRouter
from ..network.adapter import ClockDomain, NetworkAdapter
from ..network.connection import Connection, ConnectionManager
from ..network.link import Link, LocalLink
from ..network.packet import BePacket
from ..network.topology import Coord, Direction, Mesh
from ..sim.kernel import Simulator
from ..sim.tracing import NULL_TRACER, Tracer

__all__ = ["MangoNetwork"]


class MangoNetwork:
    """A cols x rows MANGO NoC: routers, links, NAs, connection manager."""

    def __init__(self, cols: int, rows: int,
                 config: Optional[RouterConfig] = None,
                 mesh: Optional[Mesh] = None,
                 tracer: Optional[Tracer] = None,
                 clocks: Optional[Dict[Coord, ClockDomain]] = None,
                 allocator="xy", profile=None):
        self.config = config or RouterConfig()
        self.mesh = mesh or Mesh(cols, rows,
                                 link_length_mm=self.config.link_length_mm,
                                 link_stages=self.config.link_stages)
        if self.mesh.cols != cols or self.mesh.rows != rows:
            raise ValueError("mesh dimensions disagree with cols/rows")
        # ``profile`` opts the kernel into callback-site profiling
        # (repro.obs.profile); None keeps the untouched hot loop.
        self.sim = Simulator(profile=profile)
        # Note: an empty Tracer is falsy (len == 0), so test identity.
        self.tracer = NULL_TRACER if tracer is None else tracer
        clocks = clocks or {}

        self.routers: Dict[Coord, MangoRouter] = {
            coord: MangoRouter(self.sim, self.config, coord,
                               tracer=self.tracer)
            for coord in self.mesh.tiles()
        }
        self.links: Dict[Tuple[Coord, Direction], Link] = {}
        for spec in self.mesh.links():
            link = Link(self.sim, spec, self.routers[spec.src],
                        self.routers[spec.dst])
            self.links[(spec.src, spec.direction)] = link
            self.routers[spec.src].attach_output_link(spec.direction, link)
            self.routers[spec.dst].attach_input_link(
                spec.direction.opposite, link)

        self.adapters: Dict[Coord, NetworkAdapter] = {}
        for coord in self.mesh.tiles():
            local_link = LocalLink(self.sim, self.routers[coord])
            self.adapters[coord] = NetworkAdapter(
                self.sim, coord, self.routers[coord], local_link,
                clock=clocks.get(coord))

        # ``allocator`` selects the admission/route-search strategy
        # (repro.alloc); "xy" is the historical hardwired policy.
        self.connection_manager = ConnectionManager(self, allocator=allocator)

    # -- construction helpers ---------------------------------------------------

    def link_keys(self) -> Iterator[Tuple[Coord, Direction]]:
        for spec in self.mesh.links():
            yield spec.src, spec.direction

    # -- simulation control -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.now

    def run(self, until: float) -> None:
        """Advance simulated time to ``until`` (nanoseconds)."""
        self.sim.run(until=until)

    def run_batch(self, until: Optional[float] = None,
                  max_events: Optional[int] = None) -> int:
        """Dispatch up to ``max_events`` kernel events due by ``until``;
        returns how many ran (0 when idle).  Lets callers pump the
        simulation in slices and interleave host-side work::

            while net.run_batch(deadline, max_events=50_000):
                progress_bar.update(net.now)
        """
        return self.sim.run_batch(until=until, max_events=max_events)

    @property
    def events_processed(self) -> int:
        """Kernel events dispatched so far (throughput benchmarking)."""
        return self.sim.events_processed

    def run_process(self, generator: Generator, name: str = ""):
        return self.sim.run_process(generator, name=name)

    # -- GS connections -------------------------------------------------------------

    def open_connection(self, src: Coord, dst: Coord,
                        want_ack: bool = True) -> Connection:
        """Open a GS connection by programming the routers over the BE
        network (runs the simulation until setup completes)."""
        return self.sim.run_process(
            self.connection_manager.open(src, dst, want_ack=want_ack),
            name=f"open:{src}->{dst}")

    def open_connection_instant(self, src: Coord, dst: Coord) -> Connection:
        """Open a connection with zero-time table writes (tests/benches)."""
        return self.connection_manager.open_instant(src, dst)

    def close_connection(self, conn: Connection,
                         want_ack: bool = True) -> None:
        self.sim.run_process(
            self.connection_manager.close(conn, want_ack=want_ack),
            name=f"close:{conn.connection_id}")

    # -- BE traffic -------------------------------------------------------------------

    def send_be(self, src: Coord, dst: Coord, words: List[int],
                vc: int = 0) -> None:
        """Spawn a process injecting one BE packet (returns immediately;
        run the simulation to make progress)."""
        adapter = self.adapters[src]
        self.sim.process(adapter.send_be(dst, words, vc=vc),
                         name=f"be:{src}->{dst}")

    def be_inbox(self, coord: Coord):
        return self.adapters[coord].be_inbox

    # -- statistics ----------------------------------------------------------------------

    def aggregate_counters(self) -> ActivityCounters:
        total = ActivityCounters()
        for router in self.routers.values():
            total.merge(router.counters)
        return total

    def total_gs_occupancy(self) -> int:
        return sum(router.gs_occupancy() for router in self.routers.values())

    def link_utilization(self) -> Dict[Tuple[Coord, Direction], float]:
        """Fraction of each link's media cycles spent transferring."""
        now = self.sim.now
        result = {}
        for key, link in self.links.items():
            port = link.src_port
            if port.arbiter is None:
                result[key] = 0.0
            else:
                result[key] = port.arbiter.stats.utilization(now)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MangoNetwork {self.mesh.cols}x{self.mesh.rows} "
                f"t={self.sim.now:.1f}ns>")
