"""The persisted perf trajectory: ``BENCH_*.json`` record / compare.

``python -m repro bench record`` runs the scenario fleet
(:mod:`repro.scenarios.fleet`) and writes one machine-readable
``BENCH_<date>_<host-fingerprint>.json`` capturing, per cell, the wall
time, kernel events (and events/sec), flit-hop totals, fingerprint and
verdict — so the ROADMAP's perf trajectory finally exists on disk
instead of in scrollback.  ``bench compare --against <file>`` replays
(or loads) a current run and exits non-zero when a cell's verdict
regressed, a cell disappeared, or its throughput dropped beyond the
tolerance — the CI regression gate (``fleet-smoke``).

Schema (``docs/benchmarks.md`` documents every field)::

    {"schema": "repro-bench/1",
     "recorded_at": "...", "host": {...}, "code_fingerprint": "...",
     "run": {"smoke": ..., "mode": ..., "jobs": ..., ...},
     "cells": {"<cell id>": {"status": "ok", "verdict": "PASS",
               "wall_s": ..., "concurrency": ..., "events": ...,
               "events_per_s": ..., "flit_hops": ..., "sim_ns": ...,
               "fingerprint": ...}},
     "totals": {...}}

``concurrency`` is the mean number of fleet cells executing
concurrently with that cell (1.0 = uncontended; recorded only for
fresh, timestamped outcomes), and ``compare`` warns when the two
records were taken at different ``--jobs`` values — both guard against
silently comparing events/sec numbers skewed by worker contention.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .scenarios.fleet import CellOutcome, cell_id, code_fingerprint

__all__ = [
    "BENCH_SCHEMA",
    "bench_filename",
    "bench_payload",
    "compare_benches",
    "host_fingerprint",
    "load_bench",
    "trajectory_report",
    "write_bench",
]

BENCH_SCHEMA = "repro-bench/1"

#: Default allowed fractional throughput drop before ``compare`` flags a
#: cell (0.3 = the current run may be up to 30% slower per cell).
DEFAULT_TOLERANCE = 0.3


def host_fingerprint() -> str:
    """Short stable digest of the recording host (part of the file
    name, so trajectories from different machines never collide)."""
    text = "|".join((platform.node(), platform.machine(),
                     platform.processor(), platform.python_version()))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:8]


def _mean_concurrency(outcome: CellOutcome,
                      outcomes: Sequence[CellOutcome]) -> Optional[float]:
    """Mean number of fleet cells running concurrently with ``outcome``
    (itself included), time-averaged over its own execution window.

    1.0 means the cell ran alone — its events/sec is uncontended;
    anything higher quantifies how much the recording's ``--jobs``
    parallelism shared the machine with this cell.  ``None`` when the
    cell was served from cache (its stamps belong to some earlier run)
    or predates the timestamped schema.
    """
    if outcome.cached or outcome.ended_at <= outcome.started_at:
        return None
    span = outcome.ended_at - outcome.started_at
    shared = 0.0
    for other in outcomes:
        if other is outcome or other.cached:
            continue
        overlap = (min(outcome.ended_at, other.ended_at)
                   - max(outcome.started_at, other.started_at))
        if overlap > 0:
            shared += overlap
    return round(1.0 + shared / span, 2)


def _cell_entry(outcome: CellOutcome,
                concurrency: Optional[float] = None) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "status": outcome.status,
        "verdict": outcome.verdict,
        "wall_s": round(outcome.wall_s, 6),
    }
    if concurrency is not None:
        entry["concurrency"] = concurrency
    if outcome.status == "ok":
        result = outcome.result
        wall = outcome.wall_s
        entry.update(
            events=result["events"],
            events_per_s=(round(result["events"] / wall, 1)
                          if wall > 0 else None),
            flit_hops=result["flit_hops"],
            sim_ns=result["sim_ns"],
            fingerprint=result["fingerprint"],
        )
        if outcome.failures:
            entry["failures"] = list(outcome.failures)
    else:
        entry["reason"] = outcome.reason
    return entry


def bench_payload(outcomes: Sequence[CellOutcome],
                  run_info: Optional[Dict[str, Any]] = None,
                  fleet_wall_s: Optional[float] = None) -> Dict[str, Any]:
    """Assemble the ``BENCH_*.json`` document for one fleet run."""
    cells = {cell_id(outcome.cell):
             _cell_entry(outcome, _mean_concurrency(outcome, outcomes))
             for outcome in outcomes}
    ok = [o for o in outcomes if o.status == "ok"]
    events = sum(o.result["events"] for o in ok)
    cell_wall = sum(o.wall_s for o in outcomes)
    wall = fleet_wall_s if fleet_wall_s is not None else cell_wall
    return {
        "schema": BENCH_SCHEMA,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "fingerprint": host_fingerprint(),
            "node": platform.node(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "code_fingerprint": code_fingerprint(),
        "run": dict(run_info or {}),
        "cells": cells,
        "totals": {
            "cells": len(outcomes),
            "passed": sum(o.verdict == "PASS" for o in outcomes),
            "failed": sum(o.verdict == "FAIL" for o in outcomes),
            "skipped": sum(o.status == "skip" for o in outcomes),
            "errors": sum(o.status == "error" for o in outcomes),
            "events": events,
            "flit_hops": sum(o.result["flit_hops"] for o in ok),
            "cell_wall_s": round(cell_wall, 6),
            "fleet_wall_s": round(wall, 6),
            "events_per_s": (round(events / wall, 1) if wall > 0
                             else None),
        },
    }


def bench_filename(payload: Dict[str, Any]) -> str:
    """``BENCH_<date>_<host-fingerprint>.json`` — one file per host per
    day; re-recording the same day overwrites (the trajectory keeps the
    *last* run)."""
    date = payload["recorded_at"].split("T", 1)[0]
    return f"BENCH_{date}_{payload['host']['fingerprint']}.json"


def write_bench(payload: Dict[str, Any], out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, bench_filename(payload))
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_bench(path: str) -> Dict[str, Any]:
    """Load and schema-check one recorded trajectory point (raises
    ``ValueError`` on anything that is not a ``repro-bench/1`` file)."""
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) \
            or payload.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path} is not a {BENCH_SCHEMA} file "
            f"(schema: {payload.get('schema') if isinstance(payload, dict) else type(payload).__name__!r})")
    for field in ("cells", "totals", "host"):
        if field not in payload:
            raise ValueError(f"{path}: missing {field!r}")
    return payload


def compare_benches(current: Dict[str, Any], baseline: Dict[str, Any],
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> Tuple[List[str], List[str]]:
    """Compare a current run against a recorded baseline.

    Returns ``(regressions, notes)``.  Regressions (the CI gate):

    * a baseline ``ok`` cell missing from the current run — a silently
      shrunk matrix must never read as green;
    * a verdict downgrade (``PASS`` -> ``FAIL``/``ERROR``/``SKIP``);
    * per-cell throughput (events/sec) below
      ``baseline * (1 - tolerance)``.

    Fingerprint changes are *notes*, not regressions: the golden
    machinery owns fingerprint drift, and a legitimate code change
    re-records goldens and baseline together.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    regressions: List[str] = []
    notes: List[str] = []
    cur_jobs = (current.get("run") or {}).get("jobs")
    base_jobs = (baseline.get("run") or {}).get("jobs")
    if cur_jobs != base_jobs:
        notes.append(
            f"WARNING: job counts differ (current --jobs {cur_jobs}, "
            f"baseline --jobs {base_jobs}) — parallel recording skews "
            "per-cell events/sec, so throughput deltas below are not "
            "like-for-like")
    # Baselines recorded before the observability axis existed carry no
    # key; they were necessarily observability-off runs.
    cur_obs = _observability_of(current)
    base_obs = _observability_of(baseline)
    if cur_obs != base_obs:
        notes.append(
            f"WARNING: observability settings differ (current "
            f"{cur_obs!r}, baseline {base_obs!r}) — metrics/tracing "
            "overhead skews per-cell events/sec, so throughput deltas "
            "below are not like-for-like")
    current_cells = current["cells"]
    for name, base in sorted(baseline["cells"].items()):
        if base.get("status") != "ok":
            continue
        cur = current_cells.get(name)
        if cur is None:
            regressions.append(f"{name}: present in baseline but missing "
                               "from the current run")
            continue
        if base.get("verdict") == "PASS" and cur.get("verdict") != "PASS":
            reason = cur.get("reason") or "; ".join(
                cur.get("failures", ())) or "verdict changed"
            regressions.append(f"{name}: verdict PASS -> "
                               f"{cur.get('verdict')} ({reason})")
            continue
        base_rate = base.get("events_per_s")
        cur_rate = cur.get("events_per_s")
        if base_rate and cur_rate:
            floor = base_rate * (1.0 - tolerance)
            if cur_rate < floor:
                regressions.append(
                    f"{name}: {cur_rate:.0f} events/s < {floor:.0f} "
                    f"(baseline {base_rate:.0f}, tolerance "
                    f"{tolerance:.0%})")
        if base.get("fingerprint") and cur.get("fingerprint") \
                and base["fingerprint"] != cur["fingerprint"]:
            notes.append(f"{name}: fingerprint {base['fingerprint']} -> "
                         f"{cur['fingerprint']} (simulated work changed)")
    new = sorted(set(current_cells) - set(baseline["cells"]))
    if new:
        notes.append(f"{len(new)} new cell(s) not in baseline: "
                     + ", ".join(new))
    base_total = baseline["totals"].get("events_per_s")
    cur_total = current["totals"].get("events_per_s")
    if base_total and cur_total:
        notes.append(f"total throughput: {cur_total:.0f} events/s vs "
                     f"baseline {base_total:.0f} "
                     f"({cur_total / base_total:.2f}x)")
    return regressions, notes


def _observability_of(payload: Dict[str, Any]) -> str:
    return (payload.get("run") or {}).get("observability") or "off"


# -- trajectory report ------------------------------------------------------

#: Sparkline glyphs, lowest throughput to highest.
_SPARK = "▁▂▃▄▅▆▇█"


def _sparkline(values: Sequence[Optional[float]]) -> str:
    """One glyph per trajectory point, normalized per row (``·`` marks a
    point where the cell has no throughput figure)."""
    present = [value for value in values if value is not None]
    if not present:
        return "·" * len(values)
    lo, hi = min(present), max(present)
    glyphs = []
    for value in values:
        if value is None:
            glyphs.append("·")
        elif hi == lo:
            glyphs.append(_SPARK[len(_SPARK) // 2])
        else:
            index = int((value - lo) / (hi - lo) * (len(_SPARK) - 1))
            glyphs.append(_SPARK[index])
    return "".join(glyphs)


def trajectory_report(paths: Sequence[str]) -> str:
    """Markdown report of per-cell events/sec and verdict trends across
    a series of recorded ``BENCH_*.json`` files.

    Points are ordered by ``recorded_at`` (file name as tie-break), one
    table row per cell id, with a per-row-normalized sparkline and the
    fractional change of the last point against the one before it.  The
    output is a pure function of the input files — no clocks, no host
    state — so regenerating the report is byte-identical.
    """
    if not paths:
        raise ValueError("trajectory_report needs at least one BENCH file")
    loaded = [(os.path.basename(path), load_bench(path)) for path in paths]
    loaded.sort(key=lambda item: (item[1].get("recorded_at", ""), item[0]))

    lines = ["# Bench trajectory", "",
             f"{len(loaded)} trajectory point(s):", ""]
    for index, (name, payload) in enumerate(loaded, 1):
        run = payload.get("run") or {}
        totals = payload["totals"]
        total_rate = totals.get("events_per_s")
        lines.append(
            f"{index}. `{name}` — {payload.get('recorded_at', '?')}, "
            f"jobs {run.get('jobs', '?')}, observability "
            f"{_observability_of(payload)}, "
            f"{totals.get('cells', '?')} cells, "
            + (f"{total_rate:.0f} events/s total"
               if total_rate else "no total throughput"))
    lines += ["", "| cell | trend | events/s (last) | Δ last | verdicts |",
              "|---|---|---:|---:|---|"]

    all_cells = sorted({cell for _name, payload in loaded
                        for cell in payload["cells"]})
    for cell in all_cells:
        rates: List[Optional[float]] = []
        verdicts: List[str] = []
        for _name, payload in loaded:
            entry = payload["cells"].get(cell)
            if entry is None:
                rates.append(None)
                verdicts.append("-")
            else:
                rates.append(entry.get("events_per_s") or None)
                verdicts.append((entry.get("verdict") or "?")[0])
        last = rates[-1]
        prev = next((rate for rate in reversed(rates[:-1])
                     if rate is not None), None)
        if last is not None and prev:
            delta = f"{(last - prev) / prev:+.1%}"
        else:
            delta = "-"
        last_text = f"{last:.0f}" if last is not None else "-"
        lines.append(f"| {cell} | {_sparkline(rates)} | {last_text} "
                     f"| {delta} | {''.join(verdicts)} |")
    lines.append("")
    return "\n".join(lines)
